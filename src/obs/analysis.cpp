#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace apt::obs {

namespace {

constexpr double kUsToS = 1e-6;
/// Category of the engine's step/epoch marker spans (trainer hooks).
constexpr const char* kEngineCat = "engine";
/// Category of the serving engine's request/batch/shed spans. Like engine
/// markers they live on the marker lane — and their timestamps are WALL
/// simulated time (queueing included), a different time base from the
/// device lanes' busy-clock slices — so they must not enter the device
/// window or phase accounting.
constexpr const char* kServeCat = "serve";

bool IsCommOp(const std::string& name) {
  return name == "alltoall" || name == "allreduce" || name == "allbroadcast" ||
         name == "wait" || name == "fault.collective" || name == "pipeline.stall";
}

/// Pipelined replay tags comm-STREAM slices with {"stream":"comm"}; they
/// live on the gpuN.comm lanes and are accounted separately so the
/// compute-timeline phase maxima keep matching EpochStats.
bool IsCommStreamSlice(const SliceRec& s) {
  const auto it = s.str_args.find("stream");
  return it != s.str_args.end() && it->second == "comm";
}

double MapOr(const std::map<std::string, double>& m, const std::string& k,
             double fallback) {
  const auto it = m.find(k);
  return it == m.end() ? fallback : it->second;
}

/// Nearest-rank percentile over an ascending-sorted vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

struct LaneSlices {
  std::int32_t lane = 0;
  std::vector<const SliceRec*> slices;  ///< positive-duration, sorted by End
};

/// Reconstructs the chain of slices that determines the track's end time by
/// walking backward from t_end: at each cursor position pick the slice that
/// ends there (preferring real work over pipeline stalls over barrier waits,
/// and staying on the current lane when possible); when nothing ends at the
/// cursor, fall into a slice spanning it (truncated) or an idle gap. Segment
/// durations sum to t_end - t_begin by construction.
///
/// A pipeline stall is idle time waiting on the comm stream, so the comm
/// chunk whose delivery released the stalled compute is the true critical
/// work: ranking stalls below real ops lets the walk pivot onto the comm
/// lane through stall windows instead of attributing the wait to the stall
/// slice itself.
int SliceRank(const SliceRec* s) {
  if (s->name == "wait") return 0;
  if (s->name == "pipeline.stall") return 2;
  return 4;
}

void BuildCriticalPath(const std::vector<LaneSlices>& lanes, double t_begin,
                       double t_end, TraceAnalysis* out) {
  const double tol = 1e-9 * std::max(1.0, std::abs(t_end)) + 1e-15;
  double t = t_end;
  std::int32_t cur_lane = -1;
  std::vector<CriticalSeg> path;  // built newest-first, reversed at the end

  const auto end_less = [](const SliceRec* s, double v) { return s->End() < v; };

  // Bounded by the total slice count plus one gap per slice.
  std::size_t total = 0;
  for (const LaneSlices& l : lanes) total += l.slices.size();
  std::size_t guard = 2 * total + 4;

  while (t > t_begin + tol && guard-- > 0) {
    // Candidates ending at the cursor.
    const SliceRec* pick = nullptr;
    int pick_score = -1;
    const SliceRec* spanning = nullptr;
    int span_score = -1;
    double latest_end_before = t_begin;
    for (const LaneSlices& l : lanes) {
      const auto it = std::lower_bound(l.slices.begin(), l.slices.end(), t - tol,
                                       end_less);
      if (it != l.slices.end() && (*it)->End() <= t + tol) {
        const SliceRec* s = *it;
        const int score = SliceRank(s) + (l.lane == cur_lane ? 1 : 0);
        if (score > pick_score) {
          pick = s;
          pick_score = score;
        }
      }
      if (it != l.slices.begin()) {
        // The nearest earlier end on this lane (for gap jumps), and the slice
        // ending at-or-after the cursor may START before it (spanning case).
        latest_end_before = std::max(latest_end_before, (*std::prev(it))->End());
      }
      if (it != l.slices.end() && (*it)->t0_s < t - tol && (*it)->End() > t + tol) {
        const SliceRec* s = *it;
        const int score = SliceRank(s) + (l.lane == cur_lane ? 1 : 0);
        if (score > span_score) {
          spanning = s;
          span_score = score;
        }
      }
    }

    if (pick != nullptr) {
      path.push_back({pick->lane, pick->t0_s, pick->dur_s, pick->name, pick->cat});
      t = pick->t0_s;
      cur_lane = pick->lane;
    } else if (spanning != nullptr) {
      // Nothing ends here but a slice is underway: attribute the portion up
      // to the cursor and continue from its start.
      path.push_back({spanning->lane, spanning->t0_s, t - spanning->t0_s,
                      spanning->name, spanning->cat});
      t = spanning->t0_s;
      cur_lane = spanning->lane;
    } else {
      // True idle gap back to the latest earlier activity (or the window
      // start).
      const double to = std::max(t_begin, std::min(latest_end_before, t));
      path.push_back({-1, to, t - to, "idle", ""});
      t = to;
      cur_lane = -1;
      if (to <= t_begin + tol) break;
    }
  }

  std::reverse(path.begin(), path.end());
  out->critical_path = std::move(path);
  out->critical_total_s = 0.0;
  out->critical_by_name_s.clear();
  for (const CriticalSeg& seg : out->critical_path) {
    out->critical_total_s += seg.dur_s;
    out->critical_by_name_s[seg.name] += seg.dur_s;
  }
}

/// The analyzer core shared by the in-memory and file front doors.
TraceSet AnalyzeSlices(
    const std::vector<SliceRec>& slices,
    const std::map<std::int32_t, std::string>& track_labels,
    const std::map<std::int32_t, std::map<std::string, std::int64_t>>& traffic,
    std::int64_t dropped) {
  TraceSet set;
  set.dropped_events = dropped;

  // Host side: wall-time stage sums keyed "cat/name".
  std::map<std::string, std::map<std::int32_t, double>> host_lane_sums;
  for (const SliceRec& s : slices) {
    if (s.domain != Domain::kReal) continue;
    const std::string key = s.cat + "/" + s.name;
    StageSum& sum = set.host_stages[key];
    sum.total_s += s.dur_s;
    ++sum.count;
    host_lane_sums[key][s.lane] += s.dur_s;
  }
  for (auto& [key, lanes] : host_lane_sums) {
    double mx = 0.0;
    for (const auto& [lane, v] : lanes) mx = std::max(mx, v);
    set.host_stages[key].max_lane_s = mx;
  }

  // Sim side: group by pid.
  std::map<std::int32_t, std::vector<const SliceRec*>> by_pid;
  for (const SliceRec& s : slices) {
    if (s.domain == Domain::kSim) by_pid[s.pid].push_back(&s);
  }

  for (const auto& [pid, recs] : by_pid) {
    TraceAnalysis a;
    a.pid = pid;
    const auto label_it = track_labels.find(pid);
    if (label_it != track_labels.end()) a.track_label = label_it->second;
    const auto traffic_it = traffic.find(pid);
    if (traffic_it != traffic.end()) a.traffic_bytes = traffic_it->second;

    // Split device slices from engine marker spans and serving spans.
    std::vector<const SliceRec*> device;
    std::vector<const SliceRec*> markers;
    std::vector<const SliceRec*> serve;
    for (const SliceRec* s : recs) {
      if (s->cat == kEngineCat) {
        markers.push_back(s);
      } else if (s->cat == kServeCat) {
        serve.push_back(s);
      } else {
        device.push_back(s);
      }
    }
    if (device.empty() && markers.empty() && serve.empty()) continue;

    // Window.
    bool first = true;
    for (const SliceRec* s : device) {
      if (first) {
        a.t_begin_s = s->t0_s;
        a.t_end_s = s->End();
        first = false;
      } else {
        a.t_begin_s = std::min(a.t_begin_s, s->t0_s);
        a.t_end_s = std::max(a.t_end_s, s->End());
      }
    }
    a.wall_s = a.t_end_s - a.t_begin_s;

    // Per-lane per-phase sums -> phase max/total, comm max; per-stage sums.
    std::map<std::int32_t, std::map<std::string, double>> lane_phase;
    std::map<std::int32_t, std::map<std::string, double>> lane_comm;
    std::map<std::int32_t, std::map<std::string, double>> lane_op;
    std::map<std::string, std::map<std::int32_t, double>> stage_lane;
    std::map<std::int32_t, std::map<std::string, double>> comm_stream_lane;
    std::map<std::int32_t, LaneSlices> lanes;
    for (const SliceRec* s : device) {
      if (IsCommStreamSlice(*s)) {
        // Comm-stream slice: its own per-phase accounting, and it still
        // joins the critical-path lanes — the path walks BOTH streams.
        comm_stream_lane[s->lane][s->cat] += s->dur_s;
        a.comm_stream_total_s[s->cat] += s->dur_s;
        if (s->dur_s > 0.0) {
          LaneSlices& l = lanes[s->lane];
          l.lane = s->lane;
          l.slices.push_back(s);
        }
        continue;
      }
      if (s->name == "pipeline.stall") a.stall_total_s += s->dur_s;
      lane_phase[s->lane][s->cat] += s->dur_s;
      a.phase_total_s[s->cat] += s->dur_s;
      if (IsCommOp(s->name)) {
        lane_comm[s->lane][s->cat] += s->dur_s;
        lane_op[s->lane][s->name] += s->dur_s;
      }
      const std::string key = s->cat + "/" + s->name;
      StageSum& sum = a.by_name[key];
      sum.total_s += s->dur_s;
      ++sum.count;
      stage_lane[key][s->lane] += s->dur_s;
      if (s->dur_s > 0.0) {
        LaneSlices& l = lanes[s->lane];
        l.lane = s->lane;
        l.slices.push_back(s);
      }
    }
    a.num_device_lanes = static_cast<std::int32_t>(lane_phase.size());
    a.num_comm_lanes = static_cast<std::int32_t>(comm_stream_lane.size());
    for (const auto& [lane, phases] : lane_phase) {
      for (const auto& [cat, v] : phases) {
        a.phase_max_s[cat] = std::max(MapOr(a.phase_max_s, cat, 0.0), v);
      }
    }
    for (const auto& [lane, phases] : comm_stream_lane) {
      for (const auto& [cat, v] : phases) {
        a.comm_stream_max_s[cat] = std::max(MapOr(a.comm_stream_max_s, cat, 0.0), v);
      }
    }
    for (const auto& [lane, phases] : lane_comm) {
      for (const auto& [cat, v] : phases) {
        a.comm_max_s[cat] = std::max(MapOr(a.comm_max_s, cat, 0.0), v);
      }
    }
    for (const auto& [lane, ops] : lane_op) {
      for (const auto& [op, v] : ops) {
        a.comm_by_op_s[op] = std::max(MapOr(a.comm_by_op_s, op, 0.0), v);
      }
    }
    for (auto& [key, per_lane] : stage_lane) {
      double mx = 0.0;
      for (const auto& [lane, v] : per_lane) mx = std::max(mx, v);
      a.by_name[key].max_lane_s = mx;
    }

    // Critical path over positive-duration device slices.
    if (!lanes.empty()) {
      std::vector<LaneSlices> lane_vec;
      lane_vec.reserve(lanes.size());
      for (auto& [lane, l] : lanes) {
        std::sort(l.slices.begin(), l.slices.end(),
                  [](const SliceRec* x, const SliceRec* y) {
                    return x->End() < y->End();
                  });
        lane_vec.push_back(std::move(l));
      }
      BuildCriticalPath(lane_vec, a.t_begin_s, a.t_end_s, &a);
    }

    // Engine markers: strategy labels + step latency distribution.
    std::vector<double> step_s;
    for (const SliceRec* s : markers) {
      const auto strat = s->str_args.find("strategy");
      if (strat != s->str_args.end()) a.strategy = strat->second;
      if (s->name == "step") {
        step_s.push_back(s->dur_s);
        // Scale-mode fast-forwarded steps (tape replay, extrapolated
        // loss/accuracy) mark themselves; the report flags the track.
        if (MapOr(s->num_args, "fast_forward", 0.0) != 0.0) {
          ++a.steps_fast_forwarded;
        }
      }
    }
    if (!step_s.empty()) {
      std::sort(step_s.begin(), step_s.end());
      a.steps.count = static_cast<std::int64_t>(step_s.size());
      double sum = 0.0;
      for (double v : step_s) sum += v;
      a.steps.mean_s = sum / static_cast<double>(step_s.size());
      a.steps.p50_s = Percentile(step_s, 0.50);
      a.steps.p95_s = Percentile(step_s, 0.95);
      a.steps.p99_s = Percentile(step_s, 0.99);
      a.steps.max_s = step_s.back();
    }

    // Serving spans: request-latency distribution, batch occupancy, sheds.
    std::vector<double> request_s;
    double batch_rows_sum = 0.0;
    for (const SliceRec* s : serve) {
      if (s->name == "request") {
        request_s.push_back(s->dur_s);
      } else if (s->name == "shed") {
        ++a.serve.shed;
      } else if (s->name == "batch") {
        ++a.serve.batches;
        const double rows = MapOr(s->num_args, "rows", 0.0);
        batch_rows_sum += rows;
        a.serve.max_batch_rows = std::max(a.serve.max_batch_rows, rows);
      }
    }
    if (!request_s.empty()) {
      std::sort(request_s.begin(), request_s.end());
      a.serve.latency.count = static_cast<std::int64_t>(request_s.size());
      double sum = 0.0;
      for (double v : request_s) sum += v;
      a.serve.latency.mean_s = sum / static_cast<double>(request_s.size());
      a.serve.latency.p50_s = Percentile(request_s, 0.50);
      a.serve.latency.p95_s = Percentile(request_s, 0.95);
      a.serve.latency.p99_s = Percentile(request_s, 0.99);
      a.serve.latency.max_s = request_s.back();
    }
    if (a.serve.batches > 0) {
      a.serve.mean_batch_rows =
          batch_rows_sum / static_cast<double>(a.serve.batches);
    }

    set.tracks.push_back(std::move(a));
  }
  return set;
}

bool CheckSchemaHeader(const JsonValue& doc, const std::string& path,
                       const char* expected_kind, std::string* error) {
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || version->kind != JsonValue::kNumber) {
    if (error != nullptr) {
      *error = path +
               ": missing schema_version (not an apt::obs file, or written "
               "before formats were versioned)";
    }
    return false;
  }
  const auto v = static_cast<std::int64_t>(version->num);
  if (v < 1 || v > kObsSchemaVersion) {
    if (error != nullptr) {
      *error = path + ": schema_version " + std::to_string(v) +
               " is not supported (this build reads up to version " +
               std::to_string(kObsSchemaVersion) + ")";
    }
    return false;
  }
  if (expected_kind != nullptr) {
    const JsonValue* meta = doc.Find("meta");
    const std::string* kind = meta != nullptr ? meta->StrOrNull("kind") : nullptr;
    if (kind == nullptr || *kind != expected_kind) {
      if (error != nullptr) {
        *error = path + ": expected a \"" + expected_kind + "\" file but meta.kind is " +
                 (kind != nullptr ? "\"" + *kind + "\"" : "absent");
      }
      return false;
    }
  }
  return true;
}

// --- formatting helpers ----------------------------------------------------

std::string Ms(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << seconds * 1e3 << "ms";
  return os.str();
}

std::string Pct(double rel) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(1) << rel * 100.0 << "%";
  return os.str();
}

std::string Num(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

void WriteTrackReport(std::ostream& os, const TraceAnalysis& a) {
  os << "== sim[" << a.pid << "] " << (a.track_label.empty() ? "?" : a.track_label);
  if (!a.strategy.empty()) os << "  strategy=" << a.strategy;
  os << " ==\n";
  os << "  window: wall " << Ms(a.wall_s) << "  stacked " << Ms(a.StackedSeconds())
     << "  comparable " << Ms(a.ComparableSeconds()) << "  lanes "
     << a.num_device_lanes << "\n";

  os << "  phases (max-lane busy / total / comm-max):\n";
  for (const char* cat : {"sample", "load", "train"}) {
    if (a.phase_max_s.count(cat) == 0 && a.phase_total_s.count(cat) == 0) continue;
    os << "    " << std::left << std::setw(8) << cat << std::right << " "
       << std::setw(12) << Ms(MapOr(a.phase_max_s, cat, 0.0)) << " / " << std::setw(12)
       << Ms(MapOr(a.phase_total_s, cat, 0.0)) << " / " << std::setw(12)
       << Ms(MapOr(a.comm_max_s, cat, 0.0)) << "\n";
  }
  for (const auto& [cat, v] : a.phase_max_s) {
    if (cat == "sample" || cat == "load" || cat == "train") continue;
    os << "    " << std::left << std::setw(8) << cat << std::right << " "
       << std::setw(12) << Ms(v) << " / " << std::setw(12)
       << Ms(MapOr(a.phase_total_s, cat, 0.0)) << "\n";
  }

  // Stages sorted by descending max-lane time.
  std::vector<std::pair<std::string, const StageSum*>> stages;
  stages.reserve(a.by_name.size());
  for (const auto& [key, sum] : a.by_name) stages.emplace_back(key, &sum);
  std::sort(stages.begin(), stages.end(), [](const auto& x, const auto& y) {
    return x.second->max_lane_s > y.second->max_lane_s;
  });
  os << "  stages (max-lane / total / count):\n";
  for (const auto& [key, sum] : stages) {
    os << "    " << std::left << std::setw(24) << key << std::right << " "
       << std::setw(12) << Ms(sum->max_lane_s) << " / " << std::setw(12)
       << Ms(sum->total_s) << " / " << sum->count << "\n";
  }

  if (!a.comm_by_op_s.empty()) {
    os << "  comm by op (max-lane):";
    for (const auto& [op, v] : a.comm_by_op_s) os << "  " << op << "=" << Ms(v);
    os << "\n";
  }
  if (a.num_comm_lanes > 0) {
    double busy = 0.0;
    for (const auto& [cat, v] : a.comm_stream_total_s) busy += v;
    os << "  pipeline: comm-stream busy " << Ms(busy) << "  exposed "
       << Ms(a.stall_total_s) << "  overlap efficiency " << std::fixed
       << std::setprecision(1) << a.OverlapEfficiency() * 100.0 << "%  ("
       << a.num_comm_lanes << " comm lanes)\n";
  }
  if (!a.traffic_bytes.empty()) {
    // Each class shows logical (fp32) bytes and, when a codec is active,
    // what actually crossed the links ("<class>.wire" counter keys).
    std::int64_t total_logical = 0, total_wire = 0;
    os << "  traffic bytes (raw / wire):";
    for (const auto& [cls, bytes] : a.traffic_bytes) {
      if (cls.size() > 5 && cls.compare(cls.size() - 5, 5, ".wire") == 0) continue;
      const auto wire_it = a.traffic_bytes.find(cls + ".wire");
      const std::int64_t wire =
          wire_it != a.traffic_bytes.end() ? wire_it->second : bytes;
      os << "  " << cls << "=" << bytes;
      if (wire != bytes) os << "/" << wire;
      total_logical += bytes;
      total_wire += wire;
    }
    os << "\n";
    if (total_wire > 0 && total_wire != total_logical) {
      os << "  compression ratio: " << std::fixed << std::setprecision(2)
         << static_cast<double>(total_logical) / static_cast<double>(total_wire)
         << "x (" << total_logical << " raw -> " << total_wire << " wire)\n";
      os.unsetf(std::ios::fixed);
      os << std::setprecision(6);
    }
  }

  if (!a.critical_path.empty()) {
    os << "  critical path: total " << Ms(a.critical_total_s) << " over "
       << a.critical_path.size() << " segments\n";
    std::vector<std::pair<std::string, double>> by_name(a.critical_by_name_s.begin(),
                                                        a.critical_by_name_s.end());
    std::sort(by_name.begin(), by_name.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    for (const auto& [name, v] : by_name) {
      os << "    " << std::left << std::setw(20) << name << std::right << " "
         << std::setw(12) << Ms(v) << "  ("
         << std::fixed << std::setprecision(1)
         << (a.critical_total_s > 0.0 ? v / a.critical_total_s * 100.0 : 0.0)
         << "%)\n";
    }
  }

  if (a.steps.count > 0) {
    os << "  steps: n=" << a.steps.count << "  mean " << Ms(a.steps.mean_s) << "  p50 "
       << Ms(a.steps.p50_s) << "  p95 " << Ms(a.steps.p95_s) << "  p99 "
       << Ms(a.steps.p99_s) << "  max " << Ms(a.steps.max_s);
    if (a.steps_fast_forwarded > 0) {
      os << "  [EXTRAPOLATED: " << a.steps_fast_forwarded
         << " fast-forwarded (scale mode) — timing exact-model, loss/accuracy "
            "from probe steps]";
    }
    os << "\n";
  }
  if (a.serve.Any()) {
    os << "  serving: requests n=" << a.serve.latency.count << "  shed "
       << a.serve.shed << "\n";
    if (a.serve.latency.count > 0) {
      os << "    request latency: mean " << Ms(a.serve.latency.mean_s)
         << "  p50 " << Ms(a.serve.latency.p50_s) << "  p95 "
         << Ms(a.serve.latency.p95_s) << "  p99 " << Ms(a.serve.latency.p99_s)
         << "  max " << Ms(a.serve.latency.max_s) << "\n";
    }
    if (a.serve.batches > 0) {
      os << "    batches: n=" << a.serve.batches << "  occupancy mean "
         << std::fixed << std::setprecision(1) << a.serve.mean_batch_rows
         << " rows  max " << std::setprecision(0) << a.serve.max_batch_rows
         << " rows\n";
      os.unsetf(std::ios::fixed);
      os << std::setprecision(6);
    }
  }
  os << "\n";
}

}  // namespace

double TraceAnalysis::StackedSeconds() const {
  return MapOr(phase_max_s, "sample", 0.0) + MapOr(phase_max_s, "load", 0.0) +
         MapOr(phase_max_s, "train", 0.0);
}

double TraceAnalysis::ComparableSeconds() const {
  return MapOr(phase_max_s, "sample", 0.0) + MapOr(phase_max_s, "load", 0.0) +
         MapOr(comm_max_s, "train", 0.0);
}

double TraceAnalysis::OverlapEfficiency() const {
  double busy = 0.0;
  for (const auto& [cat, v] : comm_stream_total_s) busy += v;
  if (busy <= 0.0) return 0.0;
  return std::min(1.0, std::max(0.0, (busy - stall_total_s) / busy));
}

const TraceAnalysis* TraceSet::ByStrategy(const std::string& strategy) const {
  for (const TraceAnalysis& a : tracks) {
    if (a.strategy == strategy) return &a;
  }
  return nullptr;
}

std::vector<const TraceAnalysis*> TraceSet::MarkedTracks() const {
  std::vector<const TraceAnalysis*> out;
  for (const TraceAnalysis& a : tracks) {
    if (!a.strategy.empty() || a.steps.count > 0) out.push_back(&a);
  }
  return out;
}

TraceSet AnalyzeEvents(const std::vector<TraceEvent>& events,
                       const std::vector<SimTrackInfo>& sim_tracks) {
  std::vector<SliceRec> slices;
  slices.reserve(events.size());
  std::map<std::int32_t, std::map<std::string, std::int64_t>> traffic;
  for (const TraceEvent& e : events) {
    if (e.ph == 'C') {
      if (e.name != nullptr && std::string_view(e.name) == "traffic_bytes") {
        for (int i = 0; i < e.num_args; ++i) {
          const TraceArg& arg = e.args[static_cast<std::size_t>(i)];
          if (arg.key == nullptr || arg.str != nullptr) continue;
          auto& cell = traffic[e.pid][arg.key];
          cell = std::max(cell, static_cast<std::int64_t>(arg.num));
        }
      }
      continue;
    }
    if (e.ph != 'X') continue;
    SliceRec s;
    s.pid = e.pid;
    s.lane = e.tid;
    s.t0_s = e.ts_us * kUsToS;
    s.dur_s = e.dur_us * kUsToS;
    s.domain = e.domain;
    if (e.name != nullptr) s.name = e.name;
    if (e.cat != nullptr) s.cat = e.cat;
    for (int i = 0; i < e.num_args; ++i) {
      const TraceArg& arg = e.args[static_cast<std::size_t>(i)];
      if (arg.key == nullptr) continue;
      if (arg.str != nullptr) {
        s.str_args[arg.key] = arg.str;
      } else {
        s.num_args[arg.key] = arg.num;
      }
    }
    slices.push_back(std::move(s));
  }
  std::map<std::int32_t, std::string> labels;
  for (const SimTrackInfo& t : sim_tracks) labels[t.pid] = t.label;
  return AnalyzeSlices(slices, labels, traffic, Tracer::Global().DroppedEvents());
}

bool AnalyzeTraceFile(const std::string& path, TraceSet* out, std::string* error) {
  JsonValue doc;
  if (!ParseJsonFile(path, &doc, error)) return false;
  if (!CheckSchemaHeader(doc, path, "trace", error)) return false;

  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    if (error != nullptr) *error = path + ": no traceEvents array";
    return false;
  }

  std::vector<SliceRec> slices;
  std::map<std::int32_t, std::string> labels;
  std::map<std::int32_t, std::map<std::string, std::int64_t>> traffic;
  for (const JsonValue& e : events->arr) {
    if (e.kind != JsonValue::kObject) continue;
    const std::string* ph = e.StrOrNull("ph");
    if (ph == nullptr) continue;
    const auto pid = static_cast<std::int32_t>(e.NumOr("pid", 0.0));
    if (*ph == "M") {
      const std::string* name = e.StrOrNull("name");
      const JsonValue* margs = e.Find("args");
      if (name != nullptr && *name == "process_name" && margs != nullptr) {
        const std::string* value = margs->StrOrNull("name");
        if (value != nullptr) {
          std::string label = *value;
          // The exporter prefixes sim process names with "sim[<pid>] ";
          // strip it so file-loaded labels match in-memory track labels
          // (reports add the prefix themselves).
          if (label.rfind("sim[", 0) == 0) {
            const std::size_t close = label.find("] ");
            if (close != std::string::npos) label = label.substr(close + 2);
          }
          labels[pid] = label;
        }
      }
      continue;
    }
    if (*ph == "C") {
      const std::string* name = e.StrOrNull("name");
      const JsonValue* cargs = e.Find("args");
      if (name != nullptr && *name == "traffic_bytes" && cargs != nullptr &&
          cargs->kind == JsonValue::kObject) {
        for (const auto& [key, v] : cargs->obj) {
          if (v.kind != JsonValue::kNumber) continue;
          auto& cell = traffic[pid][key];
          cell = std::max(cell, static_cast<std::int64_t>(v.num));
        }
      }
      continue;
    }
    if (*ph != "X") continue;
    SliceRec s;
    s.pid = pid;
    s.lane = static_cast<std::int32_t>(e.NumOr("tid", 0.0));
    s.t0_s = e.NumOr("ts", 0.0) * kUsToS;
    s.dur_s = e.NumOr("dur", 0.0) * kUsToS;
    s.domain = pid == kHostPid ? Domain::kReal : Domain::kSim;
    const std::string* name = e.StrOrNull("name");
    const std::string* cat = e.StrOrNull("cat");
    if (name != nullptr) s.name = *name;
    if (cat != nullptr) s.cat = *cat;
    const JsonValue* args = e.Find("args");
    if (args != nullptr && args->kind == JsonValue::kObject) {
      for (const auto& [key, v] : args->obj) {
        if (v.kind == JsonValue::kNumber) {
          s.num_args[key] = v.num;
        } else if (v.kind == JsonValue::kString) {
          s.str_args[key] = v.str;
        }
      }
    }
    slices.push_back(std::move(s));
  }

  std::int64_t dropped = 0;
  if (const JsonValue* meta = doc.Find("meta")) {
    dropped = static_cast<std::int64_t>(meta->NumOr("dropped_events", 0.0));
  }
  *out = AnalyzeSlices(slices, labels, traffic, dropped);
  return true;
}

void WriteReport(std::ostream& os, const TraceSet& set, bool all_tracks) {
  std::vector<const TraceAnalysis*> marked = set.MarkedTracks();
  const bool filter = !all_tracks && !marked.empty();
  std::size_t printed = 0;
  for (const TraceAnalysis& a : set.tracks) {
    if (filter && a.strategy.empty() && a.steps.count == 0) continue;
    WriteTrackReport(os, a);
    ++printed;
  }
  if (printed == 0) os << "(no simulated tracks in trace)\n\n";
  if (filter && printed < set.tracks.size()) {
    os << "(" << set.tracks.size() - printed
       << " unmarked tracks hidden; use --all to include dry-run probes)\n";
  }

  if (!set.host_stages.empty()) {
    std::vector<std::pair<std::string, const StageSum*>> stages;
    for (const auto& [key, sum] : set.host_stages) stages.emplace_back(key, &sum);
    std::sort(stages.begin(), stages.end(), [](const auto& x, const auto& y) {
      return x.second->total_s > y.second->total_s;
    });
    os << "== host (wall clock) ==\n";
    os << "  stages (max-lane / total / count):\n";
    for (const auto& [key, sum] : stages) {
      os << "    " << std::left << std::setw(24) << key << std::right << " "
         << std::setw(12) << Ms(sum->max_lane_s) << " / " << std::setw(12)
         << Ms(sum->total_s) << " / " << sum->count << "\n";
    }
  }
  if (set.dropped_events > 0) {
    os << "WARNING: " << set.dropped_events
       << " events were dropped at record time; sums are lower bounds.\n";
  }
}

// --- diff ------------------------------------------------------------------

DiffReport DiffAnalyses(const TraceAnalysis& a, const TraceAnalysis& b,
                        double threshold, double abs_floor_s) {
  DiffReport report;
  report.a_label = a.strategy.empty() ? a.track_label : a.strategy;
  report.b_label = b.strategy.empty() ? b.track_label : b.strategy;
  report.threshold = threshold;

  std::map<std::string, std::pair<double, double>> metrics;
  const auto put = [&metrics](const std::string& key, double va, double vb) {
    metrics[key] = {va, vb};
  };
  put("wall_s", a.wall_s, b.wall_s);
  put("stacked_s", a.StackedSeconds(), b.StackedSeconds());
  put("comparable_s", a.ComparableSeconds(), b.ComparableSeconds());
  const auto merge_maps = [&put](const std::string& prefix,
                                 const std::map<std::string, double>& ma,
                                 const std::map<std::string, double>& mb) {
    for (const auto& [k, v] : ma) put(prefix + k, v, MapOr(mb, k, 0.0));
    for (const auto& [k, v] : mb) {
      if (ma.count(k) == 0) put(prefix + k, 0.0, v);
    }
  };
  merge_maps("phase/", a.phase_max_s, b.phase_max_s);
  merge_maps("comm/", a.comm_max_s, b.comm_max_s);
  merge_maps("comm_op/", a.comm_by_op_s, b.comm_by_op_s);
  merge_maps("comm_stream/", a.comm_stream_max_s, b.comm_stream_max_s);
  if (a.num_comm_lanes > 0 || b.num_comm_lanes > 0) {
    put("pipeline/exposed_s", a.stall_total_s, b.stall_total_s);
    put("pipeline/overlap_efficiency", a.OverlapEfficiency(), b.OverlapEfficiency());
  }
  merge_maps("critical/", a.critical_by_name_s, b.critical_by_name_s);
  for (const auto& [k, v] : a.by_name) {
    const auto it = b.by_name.find(k);
    put("stage/" + k, v.max_lane_s, it != b.by_name.end() ? it->second.max_lane_s : 0.0);
  }
  for (const auto& [k, v] : b.by_name) {
    if (a.by_name.count(k) == 0) put("stage/" + k, 0.0, v.max_lane_s);
  }
  for (const auto& [k, v] : a.traffic_bytes) {
    const auto it = b.traffic_bytes.find(k);
    put("traffic/" + k, static_cast<double>(v),
        it != b.traffic_bytes.end() ? static_cast<double>(it->second) : 0.0);
  }
  for (const auto& [k, v] : b.traffic_bytes) {
    if (a.traffic_bytes.count(k) == 0) put("traffic/" + k, 0.0, static_cast<double>(v));
  }
  if (a.steps.count > 0 || b.steps.count > 0) {
    put("steps/p50_s", a.steps.p50_s, b.steps.p50_s);
    put("steps/p95_s", a.steps.p95_s, b.steps.p95_s);
    put("steps/p99_s", a.steps.p99_s, b.steps.p99_s);
  }
  if (a.serve.Any() || b.serve.Any()) {
    put("serve/latency_p50_s", a.serve.latency.p50_s, b.serve.latency.p50_s);
    put("serve/latency_p99_s", a.serve.latency.p99_s, b.serve.latency.p99_s);
    put("serve/mean_batch_rows", a.serve.mean_batch_rows,
        b.serve.mean_batch_rows);
    put("serve/shed", static_cast<double>(a.serve.shed),
        static_cast<double>(b.serve.shed));
  }

  for (const auto& [key, ab] : metrics) {
    DiffLine line;
    line.metric = key;
    line.a = ab.first;
    line.b = ab.second;
    const double delta = line.b - line.a;
    line.rel = delta / std::max(std::abs(line.a), 1e-12);
    const double scale = std::max(std::abs(line.a), std::abs(line.b));
    // Traffic counters (including the "<class>.wire" compressed-bytes keys)
    // are exact simulated byte counts, not timings: any drift is a real
    // behavioural change, so they get a much tighter threshold.
    const bool deterministic = key.rfind("traffic/", 0) == 0;
    const double eff_threshold =
        deterministic ? std::min(threshold, 1e-3) : threshold;
    line.significant = std::abs(delta) > abs_floor_s &&
                       scale > 0.0 && std::abs(delta) / scale >= eff_threshold;
    report.any_significant = report.any_significant || line.significant;
    report.lines.push_back(std::move(line));
  }
  // Significant lines first, each group by descending |delta|.
  std::stable_sort(report.lines.begin(), report.lines.end(),
                   [](const DiffLine& x, const DiffLine& y) {
                     if (x.significant != y.significant) return x.significant;
                     return std::abs(x.b - x.a) > std::abs(y.b - y.a);
                   });
  return report;
}

void DiffReport::WriteMarkdown(std::ostream& os) const {
  os << "### Trace diff: " << a_label << " -> " << b_label << "\n\n";
  os << "Noise threshold: " << Pct(threshold) << " relative.\n\n";
  os << "| metric | " << a_label << " | " << b_label << " | delta | rel |\n";
  os << "|---|---:|---:|---:|---:|\n";
  for (const DiffLine& line : lines) {
    os << "| " << (line.significant ? "**" + line.metric + "**" : line.metric)
       << " | " << Num(line.a) << " | " << Num(line.b) << " | "
       << Num(line.b - line.a) << " | " << Pct(line.rel) << " |\n";
  }
  os << "\n"
     << (any_significant ? "Significant stage-level changes found."
                         : "No change above the noise threshold.")
     << "\n";
}

// --- gate ------------------------------------------------------------------

bool LoadRecordsFile(const std::string& path, JsonValue* out, std::string* error) {
  if (!ParseJsonFile(path, out, error)) return false;
  return CheckSchemaHeader(*out, path, "bench_records", error);
}

std::map<std::string, std::map<std::string, double>> FlattenRecords(
    const JsonValue& records_doc) {
  std::map<std::string, std::map<std::string, double>> out;
  const JsonValue* records = records_doc.Find("records");
  if (records == nullptr || records->kind != JsonValue::kArray) return out;
  for (const JsonValue& rec : records->arr) {
    if (rec.kind != JsonValue::kObject) continue;
    if (const std::string* op = rec.StrOrNull("op")) {
      // Micro-bench record: one op/shape, wall time + sim_* counters.
      std::string key = *op;
      if (const std::string* shape = rec.StrOrNull("shape")) key += "/" + *shape;
      auto& metrics = out[key];
      for (const auto& [name, v] : rec.obj) {
        if (v.kind != JsonValue::kNumber) continue;
        if (name == "time_ns" || name.rfind("sim_", 0) == 0) metrics[name] = v.num;
      }
      continue;
    }
    if (const std::string* label = rec.StrOrNull("case")) {
      // Figure record: one simulated case, per-strategy epoch times (all
      // simulated quantities, so deterministic across machines).
      const JsonValue* strategies = rec.Find("strategies");
      if (strategies == nullptr || strategies->kind != JsonValue::kObject) continue;
      for (const auto& [strategy, sval] : strategies->obj) {
        if (sval.kind != JsonValue::kObject) continue;
        auto& metrics = out[*label + "/" + strategy];
        // Every sim_* metric is a deterministic simulated quantity (times,
        // byte counts, compression ratios); wall_seconds rides along for
        // informational diffs. Gating tolerance is picked per metric name.
        for (const auto& [name, v] : sval.obj) {
          if (v.kind != JsonValue::kNumber) continue;
          if (name == "wall_seconds" || name.rfind("sim_", 0) == 0) {
            metrics[name] = v.num;
          }
        }
      }
    }
  }
  return out;
}

GateReport RunGate(const JsonValue& baseline, const JsonValue& current,
                   const GateOptions& options) {
  GateReport report;
  const auto base = FlattenRecords(baseline);
  const auto cur = FlattenRecords(current);
  for (const auto& [key, base_metrics] : base) {
    const auto cur_it = cur.find(key);
    if (cur_it == cur.end()) {
      report.notes.push_back("baseline record missing from current run: " + key);
      continue;
    }
    for (const auto& [metric, base_value] : base_metrics) {
      const auto metric_it = cur_it->second.find(metric);
      if (metric_it == cur_it->second.end()) {
        report.notes.push_back("metric missing from current run: " + key + "." + metric);
        continue;
      }
      GateFinding f;
      f.key = key;
      f.metric = metric;
      f.base = base_value;
      f.current = metric_it->second;
      f.wall = metric == "time_ns";
      f.rel = (f.current - f.base) / std::max(std::abs(f.base), 1e-12);
      // Simulated byte counts (sim_wire_bytes, sim_compressed_bytes, ...)
      // are exact integers — any growth is a real behaviour change, so they
      // gate at a near-zero threshold instead of the timing tolerance.
      const bool byte_count = metric.size() > 6 &&
                              metric.compare(metric.size() - 6, 6, "_bytes") == 0;
      const double tolerance =
          f.wall ? options.wall_tolerance
                 : (byte_count ? std::min(options.sim_tolerance, 1e-6)
                               : options.sim_tolerance);
      f.regression = f.rel > tolerance && (!f.wall || options.gate_wall);
      ++report.compared;
      if (f.regression) ++report.regressions;
      report.findings.push_back(std::move(f));
    }
  }
  for (const auto& [key, metrics] : cur) {
    if (base.count(key) == 0) {
      report.notes.push_back("new record (not gated): " + key);
    }
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const GateFinding& x, const GateFinding& y) {
                     if (x.regression != y.regression) return x.regression;
                     return x.rel > y.rel;
                   });
  return report;
}

void GateReport::WriteMarkdown(std::ostream& os) const {
  os << "### Perf gate: " << (Pass() ? "PASS" : "FAIL") << " (" << regressions
     << " regressions / " << compared << " metrics compared)\n\n";
  os << "| record | metric | baseline | current | rel | verdict |\n";
  os << "|---|---|---:|---:|---:|---|\n";
  for (const GateFinding& f : findings) {
    os << "| " << f.key << " | " << f.metric << " | " << Num(f.base) << " | "
       << Num(f.current) << " | " << Pct(f.rel) << " | "
       << (f.regression ? "**REGRESSION**"
                        : (f.rel < 0.0 ? "improved" : "ok"))
       << " |\n";
  }
  for (const std::string& note : notes) os << "\n- " << note;
  if (!notes.empty()) os << "\n";
}

// --- records merge / serialization -----------------------------------------

namespace {

void WriteValue(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::kNull:
      w.RawValue("null");
      break;
    case JsonValue::kBool:
      w.Value(v.b);
      break;
    case JsonValue::kNumber:
      // Distinguish integral values so byte counts round-trip exactly.
      if (v.num == std::floor(v.num) && std::abs(v.num) < 9.0e15) {
        w.Value(static_cast<std::int64_t>(v.num));
      } else {
        w.Value(v.num);
      }
      break;
    case JsonValue::kString:
      w.Value(v.str);
      break;
    case JsonValue::kArray:
      w.BeginArray();
      for (const JsonValue& item : v.arr) WriteValue(w, item);
      w.EndArray();
      break;
    case JsonValue::kObject:
      w.BeginObject();
      for (const auto& [key, item] : v.obj) {
        w.Key(key);
        WriteValue(w, item);
      }
      w.EndObject();
      break;
  }
}

}  // namespace

JsonValue MergeRecordsDocs(const std::vector<const JsonValue*>& docs) {
  JsonValue out;
  out.kind = JsonValue::kObject;
  JsonValue version;
  version.kind = JsonValue::kNumber;
  version.num = static_cast<double>(kObsSchemaVersion);
  out.obj["schema_version"] = version;
  JsonValue records;
  records.kind = JsonValue::kArray;
  JsonValue meta;
  meta.kind = JsonValue::kObject;
  bool have_meta = false;
  for (const JsonValue* doc : docs) {
    if (doc == nullptr) continue;
    if (!have_meta) {
      if (const JsonValue* m = doc->Find("meta"); m != nullptr && m->kind == JsonValue::kObject) {
        meta = *m;
        have_meta = true;
      }
    }
    if (const JsonValue* r = doc->Find("records");
        r != nullptr && r->kind == JsonValue::kArray) {
      records.arr.insert(records.arr.end(), r->arr.begin(), r->arr.end());
    }
  }
  JsonValue kind;
  kind.kind = JsonValue::kString;
  kind.str = "bench_records";
  meta.obj["kind"] = kind;
  out.obj["meta"] = std::move(meta);
  out.obj["records"] = std::move(records);
  return out;
}

void WriteRecordsDoc(std::ostream& os, const JsonValue& doc) {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema_version", kObsSchemaVersion);
  for (const auto& [key, v] : doc.obj) {
    if (key == "schema_version") continue;
    w.Key(key);
    WriteValue(w, v);
  }
  w.EndObject();
  os << "\n";
}

}  // namespace apt::obs
