// Crash/fault flight recorder: a bounded per-thread ring of recent
// significant events (collectives, retries, barrier poisonings, re-plans,
// step/epoch marks) that is ALWAYS on — unlike full tracing, which is opt-in
// and unbounded. When an injected fault exhausts its recovery budget and a
// FaultError escapes the trainer, the rings are dumped to flight_<ts>.json so
// the post-mortem has the last few hundred events leading up to the failure
// even though nobody thought to enable tracing beforehand.
//
// Cost discipline: the steady-state Record() path performs no allocation —
// each thread's ring is a fixed array created once on that thread's first
// record; an event is one atomic sequence fetch, one (uncontended) mutex, and
// a struct store. Old events are overwritten, never grown. Kind/label/arg
// strings must be literals (stored as pointers, like obs::TraceArg).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace apt::obs {

/// One recorded event. Arg conventions at the current call sites:
///   kind "collective"      label op name; args bytes/participants, class
///   kind "collective.fail" label op name; args bytes/fraction, class
///   kind "barrier.poisoned"                (reason goes in the dump header)
///   kind "retry"           label "step";   args attempt/backoff_s
///   kind "giveup"          label op-less;  args attempts
///   kind "replan"          label new strategy; args improvement
///   kind "step"/"epoch"    label strategy; args index
struct FlightEvent {
  std::uint64_t seq = 0;   ///< global order across threads
  double wall_us = 0.0;    ///< real time (Tracer epoch microseconds)
  double sim_s = -1.0;     ///< simulated seconds; < 0 when not clock-tied
  const char* kind = nullptr;   ///< literal; never null once recorded
  const char* label = nullptr;  ///< literal; may be null
  std::int8_t num_args = 0;
  std::array<TraceArg, kMaxTraceArgs> args{};
};

class FlightRecorder {
 public:
  /// Events retained per thread; older ones are overwritten.
  static constexpr std::size_t kRingCapacity = 256;

  /// Process-wide recorder (leaked singleton; see Tracer::Global).
  static FlightRecorder& Global();

  /// Appends one event to the calling thread's ring. Always on; zero
  /// allocation after the thread's first call.
  void Record(const char* kind, const char* label = nullptr, double sim_s = -1.0,
              std::initializer_list<TraceArg> args = {});

  /// All retained events, oldest first (global seq order). Safe against
  /// concurrent recorders.
  std::vector<FlightEvent> Snapshot() const;

  /// Writes the flight recording (schema header + events) as JSON.
  void WriteJson(std::ostream& os, const std::string& reason) const;
  /// Writes to `path`; false on IO failure.
  bool DumpFile(const std::string& path, const std::string& reason) const;

  /// The fault path: writes flight_<timestamp_ms>_<n>.json under the dump
  /// directory (default: cwd) and bumps the flight.dumps metric. Returns the
  /// path written, or "" on IO failure.
  std::string DumpOnFault(const std::string& reason);

  /// Directory DumpOnFault writes into (tests point this at a temp dir).
  void SetDumpDir(std::string dir);
  std::string dump_dir() const;

  /// Drops retained events (rings stay allocated). Test hook.
  void Clear();

  /// Number of per-thread rings ever allocated: stable across steady-state
  /// recording, which is how tests pin the zero-allocation property.
  std::int64_t RingsAllocated() const;
  /// Events recorded / overwritten-before-snapshot, over the process life.
  std::uint64_t TotalRecorded() const;
  std::uint64_t Dropped() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::uint64_t count = 0;  ///< total ever recorded into this ring
    std::array<FlightEvent, kRingCapacity> events{};
  };

  FlightRecorder() = default;
  Ring& LocalRing();

  mutable std::mutex mu_;  ///< guards rings_ registration and dump_dir_
  std::vector<std::unique_ptr<Ring>> rings_;
  std::string dump_dir_ = ".";
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> dumps_{0};
};

/// Shorthand for FlightRecorder::Global().
inline FlightRecorder& Flight() { return FlightRecorder::Global(); }

}  // namespace apt::obs
