// Declarative SLO rules evaluated online against the telemetry windows.
//
// A rule names a telemetry series, a windowed statistic, a comparison, and a
// bound — "serve.latency_s p99 < 2ms", "train.device.busy_s skew < 1.5" —
// plus robustness knobs: windows with fewer than `min_count` samples are
// skipped (tail windows lie), and a violation only FIRES after
// `sustain_windows` consecutive violating windows (transients don't).
//
// The SloWatchdog owns a set of rules and per-rule cursors. Evaluate(now_s)
// walks every closed window the rule has not seen yet, in window order, and
// on each fired violation bumps the slo.* metrics, emits a real-domain
// "slo" trace event and a flight-recorder event, and invokes the callback —
// the hook ResilientRunner uses to force a re-plan evaluation and the
// serving engine uses to tighten admission control. Evaluation must happen
// at single-threaded deterministic points (see obs/telemetry.h): the
// watchdog itself takes no locks beyond the series snapshots.
//
// ParseSloRule understands the textual form, shared by `aptperf slo` and
// in-process configuration:
//   <series> <stat> <cmp> <bound>[unit]
//   stat: p50 | p95 | p99 | mean | min | max | count | skew
//   cmp:  < | >        (the rule states what SHOULD hold)
//   unit: s | ms | us | ns (seconds multipliers; bare number = raw units)
// "skew" is max/mean within the window — the per-device straggle ratio when
// every device records its busy time into one series.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace apt::obs {

enum class SloStat { kP50, kP95, kP99, kMean, kMin, kMax, kCount, kSkew };
enum class SloCmp { kLt, kGt };

const char* ToString(SloStat stat);
const char* ToString(SloCmp cmp);

struct SloRule {
  std::string name;    ///< for reporting; defaults to the parsed text
  std::string series;  ///< telemetry series the rule watches
  SloStat stat = SloStat::kP99;
  SloCmp cmp = SloCmp::kLt;  ///< the HEALTHY relation (violation = negation)
  double bound = 0.0;
  std::int64_t min_count = 1;  ///< skip windows with fewer samples
  int sustain_windows = 1;     ///< consecutive violating windows to fire
};

/// The statistic a rule evaluates, computed from one window snapshot.
double SloStatOf(const WindowStats& window, SloStat stat);

/// Parses the textual rule form above. On failure returns false and, when
/// `error` is non-null, a one-line description.
bool ParseSloRule(const std::string& text, SloRule* out,
                  std::string* error = nullptr);

struct SloViolation {
  const SloRule* rule = nullptr;  ///< owned by the watchdog
  WindowStats window;             ///< the window that fired
  double value = 0.0;             ///< observed statistic
  int streak = 0;                 ///< consecutive violating windows so far
};

class SloWatchdog {
 public:
  using Callback = std::function<void(const SloViolation&)>;

  explicit SloWatchdog(std::vector<SloRule> rules);

  /// Invoked on every FIRED violation (after metrics/trace/flight emission).
  void set_callback(Callback cb) { callback_ = std::move(cb); }

  /// Evaluates every rule over its unseen closed windows at simulated time
  /// `now_s`. Returns the number of violations fired by this call. Must be
  /// called from deterministic single-threaded points; cheap when nothing
  /// new closed.
  int Evaluate(double now_s);

  /// Violations fired over the watchdog's lifetime.
  std::int64_t violations_total() const { return violations_total_; }
  std::vector<SloRule> rules() const;

 private:
  struct RuleState {
    SloRule rule;
    std::int64_t last_window = -1;  ///< newest window already evaluated
    int streak = 0;                 ///< current consecutive violations
  };

  std::vector<RuleState> rules_;
  Callback callback_;
  std::int64_t violations_total_ = 0;
};

}  // namespace apt::obs
