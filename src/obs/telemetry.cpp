#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace apt::obs {

namespace {

std::atomic<bool> g_telemetry_enabled{true};

std::int64_t ToFixedPoint(double v) {
  const double scaled = v * Histogram::kFixedPointScale;
  if (scaled >= 9.2e18) return INT64_MAX;
  if (scaled <= -9.2e18) return INT64_MIN;
  return std::llround(scaled);
}

double FromFixedPoint(std::int64_t fp) {
  return static_cast<double>(fp) / Histogram::kFixedPointScale;
}

}  // namespace

TimeSeries::TimeSeries(std::string name, double window_s)
    : name_(std::move(name)), window_s_(window_s) {}

std::int64_t TimeSeries::WindowOf(double t_s) const {
  return static_cast<std::int64_t>(std::floor(t_s / window_s_));
}

void TimeSeries::Record(double t_s, double value) {
  const std::int64_t w = WindowOf(t_s);
  const std::int64_t fp = ToFixedPoint(value);
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[static_cast<std::size_t>(
      ((w % kRingWindows) + kRingWindows) % kRingWindows)];
  if (slot.window != w) {
    // The ring slot last held a window kRingWindows back (or nothing);
    // rotate it. With a monotone virtual clock this only drops windows
    // older than the retention horizon.
    slot.window = w;
    slot.count = 0;
    slot.sum_fp = 0;
    slot.min_fp = 0;
    slot.max_fp = 0;
    slot.hist.Reset();
  }
  if (slot.count == 0) {
    slot.min_fp = fp;
    slot.max_fp = fp;
  } else {
    slot.min_fp = std::min(slot.min_fp, fp);
    slot.max_fp = std::max(slot.max_fp, fp);
  }
  ++slot.count;
  slot.sum_fp += fp;
  slot.hist.Record(value);
}

WindowStats TimeSeries::SnapshotSlot(const Slot& slot) const {
  WindowStats w;
  w.window = slot.window;
  w.t0_s = static_cast<double>(slot.window) * window_s_;
  w.t1_s = static_cast<double>(slot.window + 1) * window_s_;
  w.count = slot.count;
  w.sum = FromFixedPoint(slot.sum_fp);
  w.min = FromFixedPoint(slot.min_fp);
  w.max = FromFixedPoint(slot.max_fp);
  w.p50 = slot.hist.ValueAtQuantile(0.50);
  w.p95 = slot.hist.ValueAtQuantile(0.95);
  w.p99 = slot.hist.ValueAtQuantile(0.99);
  return w;
}

std::vector<WindowStats> TimeSeries::ClosedWindows(double now_s) const {
  const std::int64_t cur = WindowOf(now_s);
  std::vector<WindowStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& slot : slots_) {
      if (slot.window >= 0 && slot.window < cur && slot.count > 0) {
        out.push_back(SnapshotSlot(slot));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WindowStats& a, const WindowStats& b) {
              return a.window < b.window;
            });
  return out;
}

std::vector<WindowStats> TimeSeries::AllWindows() const {
  std::vector<WindowStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& slot : slots_) {
      if (slot.window >= 0 && slot.count > 0) out.push_back(SnapshotSlot(slot));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WindowStats& a, const WindowStats& b) {
              return a.window < b.window;
            });
  return out;
}

void TimeSeries::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    slot.window = -1;
    slot.count = 0;
    slot.sum_fp = 0;
    slot.min_fp = 0;
    slot.max_fp = 0;
    slot.hist.Reset();
  }
}

Telemetry& Telemetry::Global() {
  static Telemetry* telemetry = new Telemetry();  // leaked; see Tracer::Global
  return *telemetry;
}

TimeSeries& Telemetry::series(const std::string& name, double window_s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot || slot->window_s() != window_s) {
    slot = std::make_unique<TimeSeries>(name, window_s);
  }
  return *slot;
}

TimeSeries* Telemetry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<TimeSeries*> Telemetry::AllSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeSeries*> out;
  out.reserve(series_.size());
  for (const auto& [name, ts] : series_) out.push_back(ts.get());
  return out;
}

void Telemetry::ResetAll() {
  for (TimeSeries* ts : AllSeries()) ts->Reset();
}

void Telemetry::SetEnabled(bool enabled) {
  g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

bool Telemetry::Enabled() {
  return g_telemetry_enabled.load(std::memory_order_relaxed);
}

void Telemetry::WriteTimelineJsonl(std::ostream& os) const {
  {
    JsonWriter w(os);
    w.BeginObject();
    w.KV("schema_version", kObsSchemaVersion);
    w.Key("meta");
    w.BeginObject();
    w.KV("generator", "apt::obs");
    w.KV("kind", "telemetry");
    w.EndObject();
    w.EndObject();
  }
  os << "\n";
  for (const TimeSeries* ts : AllSeries()) {
    for (const WindowStats& win : ts->AllWindows()) {
      JsonWriter w(os);
      w.BeginObject();
      w.KV("series", ts->name());
      w.KV("window", win.window);
      w.KV("t0_s", win.t0_s);
      w.KV("t1_s", win.t1_s);
      w.KV("count", win.count);
      w.KV("sum", win.sum);
      w.KV("min", win.min);
      w.KV("max", win.max);
      w.KV("mean", win.Mean());
      w.KV("p50", win.p50);
      w.KV("p95", win.p95);
      w.KV("p99", win.p99);
      w.EndObject();
      os << "\n";
    }
  }
}

bool Telemetry::WriteTimelineFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteTimelineJsonl(out);
  return static_cast<bool>(out);
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "apt_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void WritePrometheusText(std::ostream& os) {
  const Metrics& metrics = Metrics::Global();
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : metrics.GaugeSnapshot()) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, hist] : metrics.HistogramRefs()) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " histogram\n";
    std::int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const std::int64_t n = hist->BucketCount(i);
      if (n == 0) continue;  // cumulative count unchanged: line elided
      cumulative += n;
      if (i == Histogram::kNumBuckets - 1) break;  // +Inf line below
      os << prom << "_bucket{le=\"" << Histogram::BucketUpperBound(i) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << hist->Count() << "\n";
    os << prom << "_sum " << hist->Sum() << "\n";
    os << prom << "_count " << hist->Count() << "\n";
  }
  for (const TimeSeries* ts : Telemetry::Global().AllSeries()) {
    const std::vector<WindowStats> windows = ts->AllWindows();
    if (windows.empty()) continue;
    const WindowStats& last = windows.back();
    const std::string prom = PromName("series." + ts->name());
    os << "# TYPE " << prom << " gauge\n";
    const auto stat = [&](const char* key, double v) {
      os << prom << "{stat=\"" << key << "\",window=\"" << last.window
         << "\"} " << v << "\n";
    };
    stat("count", static_cast<double>(last.count));
    stat("mean", last.Mean());
    stat("min", last.min);
    stat("max", last.max);
    stat("p50", last.p50);
    stat("p95", last.p95);
    stat("p99", last.p99);
  }
}

}  // namespace apt::obs
