// Online telemetry: windowed time-series keyed on the VIRTUAL clock.
//
// A TimeSeries partitions simulated time into fixed windows of `window_s`
// and keeps, per window, count / sum / min / max plus a full log-scale
// streaming histogram (obs/histogram.h), in a fixed ring of the most recent
// kRingWindows windows. Record(t_s, v) is the hot path: one uncontended
// mutex, integer accumulation, zero steady-state allocation.
//
// Determinism invariant (the telemetry twin of strategy equivalence): window
// membership is a pure function of the SIMULATED timestamp, and every
// accumulation commutes (fixed-point sums, bucket counts, integer min/max) —
// so a snapshot taken at a deterministic point is bit-identical regardless
// of the thread schedule that produced the records. The corollary callers
// must respect: windows are never "closed" by Record itself; closure is a
// property of the observation time (`ClosedWindows(now_s)` — every window
// strictly before now's window), evaluated from single-threaded points
// (trainer epoch boundaries, the serving dispatch loop after a wave join).
//
// The registry (Telemetry::Global()) mirrors obs/metrics.h: name lookup
// takes a mutex, the returned reference is stable for the process lifetime,
// and Metrics::ResetForTest also resets every series here.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace apt::obs {

/// Snapshot of one window of one series (derived stats precomputed, so
/// exporters and the SLO watchdog share one representation with the
/// `aptperf slo` offline path).
struct WindowStats {
  std::int64_t window = 0;  ///< floor(t / window_s)
  double t0_s = 0.0;        ///< window * window_s
  double t1_s = 0.0;        ///< (window + 1) * window_s
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< histogram nearest-rank bucket upper bounds
  double p95 = 0.0;
  double p99 = 0.0;

  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class TimeSeries {
 public:
  /// Windows retained; older ones are overwritten as time advances.
  static constexpr int kRingWindows = 32;

  TimeSeries(std::string name, double window_s);

  /// Records `value` at simulated time `t_s`. Thread-safe; allocation-free.
  void Record(double t_s, double value);

  /// Retained windows whose end is at or before now_s's window start —
  /// i.e. every window that can no longer receive records from a
  /// monotonically advancing clock. Ascending window order.
  std::vector<WindowStats> ClosedWindows(double now_s) const;
  /// Every retained non-empty window (open one included), ascending.
  std::vector<WindowStats> AllWindows() const;

  const std::string& name() const { return name_; }
  double window_s() const { return window_s_; }
  /// Index of the window containing `t_s`.
  std::int64_t WindowOf(double t_s) const;

  void Reset();

 private:
  struct Slot {
    std::int64_t window = -1;  ///< -1: never used
    std::int64_t count = 0;
    std::int64_t sum_fp = 0;
    std::int64_t min_fp = 0;
    std::int64_t max_fp = 0;
    Histogram hist;
  };

  WindowStats SnapshotSlot(const Slot& slot) const;

  const std::string name_;
  const double window_s_;
  mutable std::mutex mu_;
  std::array<Slot, kRingWindows> slots_;
};

class Telemetry {
 public:
  /// Process-wide registry (leaked singleton, like Metrics/Tracer).
  static Telemetry& Global();

  /// Returns the series named `name`, creating it with `window_s` on first
  /// use. The reference is stable for the process lifetime. Re-requesting an
  /// existing series with a DIFFERENT window reconfigures it: the series is
  /// rebuilt (and cleared) at the new width, so tests with different window
  /// geometries coexist against the process-global registry.
  TimeSeries& series(const std::string& name, double window_s);
  /// Lookup without creation; nullptr when absent.
  TimeSeries* Find(const std::string& name);

  /// All registered series, name order (pointers stable).
  std::vector<TimeSeries*> AllSeries() const;

  /// Clears every series' windows (registrations stay).
  void ResetAll();

  /// Global kill switch for the Record hot paths (relaxed atomic; default
  /// on). Instrumentation sites gate on this so the overhead bench can
  /// measure telemetry-off against telemetry-on.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  /// Windowed timeline JSONL: a schema header line, then one JSON object
  /// per retained series-window (series/window/t0_s/t1_s/count/sum/min/max/
  /// mean/p50/p95/p99), ascending by series name then window.
  void WriteTimelineJsonl(std::ostream& os) const;
  bool WriteTimelineFile(const std::string& path) const;

 private:
  Telemetry() = default;

  mutable std::mutex mu_;  ///< guards the map, not the series
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

/// Prometheus-style text snapshot of the whole observability state: every
/// Metrics counter/gauge/histogram plus, per telemetry series, the most
/// recent closed window's stats. Metric names are sanitized (dots ->
/// underscores, "apt_" prefix); histograms render cumulative buckets.
void WritePrometheusText(std::ostream& os);

}  // namespace apt::obs
