#include "obs/flight.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace apt::obs {

FlightRecorder& FlightRecorder::Global() {
  // Leaked: worker threads may record during static destruction.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Ring& FlightRecorder::LocalRing() {
  thread_local Ring* local = nullptr;
  if (local == nullptr) {
    auto ring = std::make_unique<Ring>();
    std::lock_guard<std::mutex> lock(mu_);
    local = ring.get();
    rings_.push_back(std::move(ring));
  }
  return *local;
}

void FlightRecorder::Record(const char* kind, const char* label, double sim_s,
                            std::initializer_list<TraceArg> args) {
  Ring& ring = LocalRing();
  FlightEvent e;
  e.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  e.wall_us = Tracer::Global().RealNowUs();
  e.sim_s = sim_s;
  e.kind = kind;
  e.label = label;
  for (const TraceArg& a : args) {
    if (e.num_args == kMaxTraceArgs) break;
    e.args[static_cast<std::size_t>(e.num_args++)] = a;
  }
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events[ring.count % kRingCapacity] = e;
  ++ring.count;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      const std::uint64_t kept = std::min<std::uint64_t>(ring->count, kRingCapacity);
      for (std::uint64_t i = 0; i < kept; ++i) {
        out.push_back(ring->events[(ring->count - kept + i) % kRingCapacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });
  return out;
}

void FlightRecorder::WriteJson(std::ostream& os, const std::string& reason) const {
  const std::vector<FlightEvent> events = Snapshot();
  JsonWriter w(os);
  w.BeginObject();
  w.KV("schema_version", kObsSchemaVersion);
  w.Key("meta");
  w.BeginObject();
  w.KV("generator", "apt::obs");
  w.KV("kind", "flight");
  w.EndObject();
  w.KV("reason", reason);
  w.KV("total_recorded", static_cast<std::int64_t>(TotalRecorded()));
  w.KV("dropped", static_cast<std::int64_t>(Dropped()));
  w.Key("events");
  w.BeginArray();
  for (const FlightEvent& e : events) {
    w.BeginObject();
    w.KV("seq", static_cast<std::int64_t>(e.seq));
    w.KV("wall_us", e.wall_us);
    if (e.sim_s >= 0.0) w.KV("sim_s", e.sim_s);
    w.KV("kind", e.kind != nullptr ? e.kind : "?");
    if (e.label != nullptr) w.KV("label", e.label);
    if (e.num_args > 0) {
      w.Key("args");
      w.BeginObject();
      for (int i = 0; i < e.num_args; ++i) {
        const TraceArg& a = e.args[static_cast<std::size_t>(i)];
        if (a.key == nullptr) continue;
        if (a.str != nullptr) {
          w.KV(a.key, a.str);
        } else {
          w.KV(a.key, a.num);
        }
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  // Performance lead-up: the last few telemetry windows of every series, so
  // a giveup dump shows HOW the run was doing before the event rings' story
  // starts — not just what fired.
  constexpr std::size_t kTelemetryWindows = 8;
  w.Key("telemetry");
  w.BeginObject();
  for (const TimeSeries* ts : Telemetry::Global().AllSeries()) {
    const std::vector<WindowStats> windows = ts->AllWindows();
    if (windows.empty()) continue;
    w.Key(ts->name());
    w.BeginArray();
    const std::size_t first =
        windows.size() > kTelemetryWindows ? windows.size() - kTelemetryWindows
                                           : 0;
    for (std::size_t i = first; i < windows.size(); ++i) {
      const WindowStats& win = windows[i];
      w.BeginObject();
      w.KV("window", win.window);
      w.KV("t0_s", win.t0_s);
      w.KV("t1_s", win.t1_s);
      w.KV("count", win.count);
      w.KV("sum", win.sum);
      w.KV("min", win.min);
      w.KV("max", win.max);
      w.KV("mean", win.Mean());
      w.KV("p50", win.p50);
      w.KV("p95", win.p95);
      w.KV("p99", win.p99);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
  os << "\n";
}

bool FlightRecorder::DumpFile(const std::string& path, const std::string& reason) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out, reason);
  return static_cast<bool>(out);
}

std::string FlightRecorder::DumpOnFault(const std::string& reason) {
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  const std::uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = dump_dir() + "/flight_" + std::to_string(now_ms) + "_" +
                           std::to_string(n) + ".json";
  if (!DumpFile(path, reason)) return "";
  Metrics::Global().counter("flight.dumps").Increment();
  return path;
}

void FlightRecorder::SetDumpDir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  dump_dir_ = std::move(dir);
}

std::string FlightRecorder::dump_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dump_dir_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->count = 0;
  }
}

std::int64_t FlightRecorder::RingsAllocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(rings_.size());
}

std::uint64_t FlightRecorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->count;
  }
  return total;
}

std::uint64_t FlightRecorder::Dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->count > kRingCapacity) dropped += ring->count - kRingCapacity;
  }
  return dropped;
}

}  // namespace apt::obs
