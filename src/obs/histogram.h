// Fixed-bucket log-scale streaming histogram: the distribution primitive
// behind the online telemetry layer (obs/telemetry.h) and the histogram
// metrics of obs/metrics.h.
//
// Design constraints, in order:
//   * bit-deterministic: the bucket index is computed from the IEEE-754 bit
//     pattern of the value (exponent + top mantissa bits), never through
//     log()/exp2(), and the running sum is accumulated in fixed point — so
//     the final state is identical regardless of the order (or the thread
//     schedule) in which values arrive;
//   * zero steady-state allocation: the bucket array is a fixed inline
//     std::array; Record() touches a handful of relaxed atomics and nothing
//     else;
//   * TSan-clean concurrent recording: every mutable field is a std::atomic
//     updated with commutative operations (fetch_add, CAS min/max), so
//     worker threads record into a shared histogram without locks;
//   * mergeable: Merge() adds another histogram bucket-by-bucket, and is
//     associative and commutative (tests pin this).
//
// Bucket layout: 8 sub-buckets per octave (top 3 mantissa bits), covering
// [2^-30, 2^14) ~ [1e-9 s, 16384 s] — the full range of simulated durations
// this codebase produces — with ~12.5% relative bucket width. Values below
// the range (zero, negatives, denormals, NaN) land in the underflow bucket;
// values at or above 2^14 land in the overflow bucket. Quantiles are
// reported as the UPPER bound of the nearest-rank bucket, so an online
// quantile is always >= the exact sample quantile and within one bucket
// width of it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace apt::obs {

class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;  ///< 8 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMinExp = -30;  ///< smallest bucketed octave, 2^-30
  static constexpr int kMaxExp = 14;   ///< first out-of-range octave, 2^14
  /// underflow + (kMaxExp - kMinExp) octaves * 8 + overflow.
  static constexpr int kNumBuckets = 2 + (kMaxExp - kMinExp) * kSubBuckets;
  /// Fixed-point scale for the running sum / min / max (nanounits): integer
  /// accumulation commutes exactly, which floating point would not.
  static constexpr double kFixedPointScale = 1e9;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one value. Lock-free, allocation-free, safe from any thread.
  void Record(double v);

  /// Adds every bucket / the count / the sum of `other` into this histogram.
  /// Associative and commutative with Record and other Merges.
  void Merge(const Histogram& other);
  /// Copies `other`'s state over this histogram's (snapshot helper).
  void CopyFrom(const Histogram& other);
  void Reset();

  std::int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const {
    return static_cast<double>(sum_fp_.load(std::memory_order_relaxed)) /
           kFixedPointScale;
  }
  double Mean() const;
  /// Exact min/max of the recorded values at fixed-point resolution
  /// (not bucket bounds). 0 when empty.
  double Min() const;
  double Max() const;

  /// Nearest-rank quantile, reported as the upper bound of the bucket that
  /// holds the rank-ceil(q * count) value. q in [0, 1]; 0 when empty.
  double ValueAtQuantile(double q) const;

  std::int64_t BucketCount(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }

  // --- bucket geometry (static: shared with tests and exporters) ----------
  /// Index of the bucket `v` records into. 0 = underflow,
  /// kNumBuckets-1 = overflow.
  static int BucketIndexOf(double v);
  /// Inclusive lower / exclusive upper value bound of bucket `index`.
  /// Underflow: [0, 2^kMinExp); overflow: [2^kMaxExp, +inf).
  static double BucketLowerBound(int index);
  static double BucketUpperBound(int index);
  static double BucketWidth(int index) {
    return BucketUpperBound(index) - BucketLowerBound(index);
  }

 private:
  std::array<std::atomic<std::int64_t>, kNumBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_fp_{0};
  /// Fixed-point min/max maintained with CAS loops; sentinels when empty.
  std::atomic<std::int64_t> min_fp_{kEmptyMin};
  std::atomic<std::int64_t> max_fp_{kEmptyMax};

  static constexpr std::int64_t kEmptyMin = INT64_MAX;
  static constexpr std::int64_t kEmptyMax = INT64_MIN;
};

}  // namespace apt::obs
