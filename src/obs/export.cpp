#include "obs/export.h"

#include <algorithm>
#include <fstream>

#include "obs/json.h"

namespace apt::obs {

namespace {

void WriteMetadataEvent(JsonWriter& w, const char* what, std::int32_t pid,
                        std::int32_t tid, const std::string& value) {
  w.BeginObject();
  w.KV("name", what);
  w.KV("ph", "M");
  w.KV("pid", pid);
  w.KV("tid", tid);
  w.Key("args");
  w.BeginObject();
  w.KV("name", value);
  w.EndObject();
  w.EndObject();
}

void WriteSortIndex(JsonWriter& w, std::int32_t pid, std::int32_t index) {
  w.BeginObject();
  w.KV("name", "process_sort_index");
  w.KV("ph", "M");
  w.KV("pid", pid);
  w.KV("tid", 0);
  w.Key("args");
  w.BeginObject();
  w.KV("sort_index", index);
  w.EndObject();
  w.EndObject();
}

void WriteEvent(JsonWriter& w, const TraceEvent& e) {
  w.BeginObject();
  w.KV("name", e.name != nullptr ? e.name : "?");
  if (e.cat != nullptr) w.KV("cat", e.cat);
  w.KV("ph", std::string_view(&e.ph, 1));
  w.KV("ts", e.ts_us);
  if (e.ph == 'X') w.KV("dur", e.dur_us);
  w.KV("pid", e.pid);
  w.KV("tid", e.tid);
  if (e.num_args > 0) {
    w.Key("args");
    w.BeginObject();
    for (int i = 0; i < e.num_args; ++i) {
      const TraceArg& a = e.args[static_cast<std::size_t>(i)];
      if (a.key == nullptr) continue;
      if (a.str != nullptr) {
        w.KV(a.key, a.str);
      } else {
        w.KV(a.key, a.num);
      }
    }
    w.EndObject();
  }
  w.EndObject();
}

}  // namespace

void WriteChromeTraceJson(std::ostream& os, const std::vector<TraceEvent>& events,
                          const std::vector<SimTrackInfo>& sim_tracks,
                          std::int32_t num_host_lanes) {
  // Stable timestamp order within each lane keeps viewers happy.
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const TraceEvent& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->ts_us < b->ts_us;
                   });

  JsonWriter w(os);
  w.BeginObject();
  // Header object: lets the analyzer reject files it cannot interpret while
  // Perfetto/chrome://tracing ignore the extra top-level members.
  w.KV("schema_version", kObsSchemaVersion);
  w.Key("meta");
  w.BeginObject();
  w.KV("generator", "apt::obs");
  w.KV("kind", "trace");
  w.KV("dropped_events", Tracer::Global().DroppedEvents());
  w.EndObject();
  w.KV("displayTimeUnit", "ms");
  w.Key("traceEvents");
  w.BeginArray();
  WriteMetadataEvent(w, "process_name", kHostPid, 0, "host (wall clock)");
  WriteSortIndex(w, kHostPid, 0);
  for (std::int32_t t = 0; t < num_host_lanes; ++t) {
    WriteMetadataEvent(w, "thread_name", kHostPid, t, "cpu" + std::to_string(t));
  }
  std::int32_t sort = 1;
  for (const SimTrackInfo& track : sim_tracks) {
    WriteMetadataEvent(w, "process_name", track.pid, 0,
                       "sim[" + std::to_string(track.pid) + "] " + track.label);
    WriteSortIndex(w, track.pid, sort++);
    for (std::int32_t lane = 0; lane < track.num_lanes; ++lane) {
      WriteMetadataEvent(w, "thread_name", track.pid, lane, track.LaneName(lane));
    }
  }
  for (const TraceEvent* e : sorted) WriteEvent(w, *e);
  w.EndArray();
  w.EndObject();
  os << "\n";
}

bool ExportChromeTrace(const std::string& path) {
  Tracer& tracer = Tracer::Global();
  const std::vector<TraceEvent> events = tracer.Drain();
  std::ofstream out(path);
  if (!out) return false;
  WriteChromeTraceJson(out, events, tracer.SimTracks(), tracer.NumHostLanes());
  return static_cast<bool>(out);
}

}  // namespace apt::obs
