// Minimal streaming JSON writer shared by the trace exporter, the metrics
// dump, and the bench harness (one escaping/formatting implementation
// instead of the ad-hoc string concatenation the benches used to carry).
//
// The writer is a thin comma-and-nesting bookkeeper over an ostream: callers
// are responsible for emitting a structurally sensible sequence (Key before
// a value inside an object, matched Begin/End). Numbers are emitted with
// round-trip precision; NaN/Inf become null (JSON has no literals for them).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace apt::obs {

/// Version stamped into every JSON file apt::obs emits (traces, metrics
/// dumps, bench records, flight recordings) as a top-level/meta
/// "schema_version" member. Readers (the trace analyzer, aptperf) reject
/// files whose version is missing or newer than this, so the formats can
/// evolve without silently mis-parsing old tooling against new files.
inline constexpr std::int64_t kObsSchemaVersion = 1;

std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next object member.
  void Key(std::string_view k);

  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(double v);
  void Value(std::int64_t v);
  void Value(std::int32_t v) { Value(static_cast<std::int64_t>(v)); }
  void Value(bool v);

  /// Emits `json` verbatim as the next value (caller guarantees it is a
  /// well-formed JSON fragment, e.g. a record serialized elsewhere).
  void RawValue(std::string_view json);

  /// Key + value in one call.
  template <typename T>
  void KV(std::string_view k, const T& v) {
    Key(k);
    Value(v);
  }

 private:
  void Separate();  ///< comma between siblings

  std::ostream* os_;
  /// One entry per open container: true until the first element is written.
  std::vector<bool> first_{true};
  bool pending_key_ = false;
};

// --- reader ----------------------------------------------------------------
//
// Recursive-descent parser for the files the writer above produces (and for
// anything structurally similar). Grown out of the mini parser the obs tests
// carried privately; promoted here so the trace analyzer and the aptperf CLI
// read real files through the exact same code path the tests exercise.

/// A parsed JSON document node. Cheap to navigate, not cheap to copy —
/// intended for one-shot analysis of trace/metrics/records files.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  /// Find + numeric coercion with a default (the analyzer's common read).
  double NumOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == kNumber ? v->num : fallback;
  }
  const std::string* StrOrNull(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == kString ? &v->str : nullptr;
  }
};

/// Parses `text` (which must be exactly one JSON value plus whitespace).
/// On failure returns false and, when `error` is non-null, a one-line
/// description with the byte offset.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error = nullptr);

/// Reads and parses a whole file; IO failures land in `error` too.
bool ParseJsonFile(const std::string& path, JsonValue* out,
                   std::string* error = nullptr);

}  // namespace apt::obs
