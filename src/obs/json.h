// Minimal streaming JSON writer shared by the trace exporter, the metrics
// dump, and the bench harness (one escaping/formatting implementation
// instead of the ad-hoc string concatenation the benches used to carry).
//
// The writer is a thin comma-and-nesting bookkeeper over an ostream: callers
// are responsible for emitting a structurally sensible sequence (Key before
// a value inside an object, matched Begin/End). Numbers are emitted with
// round-trip precision; NaN/Inf become null (JSON has no literals for them).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace apt::obs {

std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits the key of the next object member.
  void Key(std::string_view k);

  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(double v);
  void Value(std::int64_t v);
  void Value(std::int32_t v) { Value(static_cast<std::int64_t>(v)); }
  void Value(bool v);

  /// Emits `json` verbatim as the next value (caller guarantees it is a
  /// well-formed JSON fragment, e.g. a record serialized elsewhere).
  void RawValue(std::string_view json);

  /// Key + value in one call.
  template <typename T>
  void KV(std::string_view k, const T& v) {
    Key(k);
    Value(v);
  }

 private:
  void Separate();  ///< comma between siblings

  std::ostream* os_;
  /// One entry per open container: true until the first element is written.
  std::vector<bool> first_{true};
  bool pending_key_ = false;
};

}  // namespace apt::obs
