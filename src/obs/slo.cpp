#include "obs/slo.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace apt::obs {

const char* ToString(SloStat stat) {
  switch (stat) {
    case SloStat::kP50:
      return "p50";
    case SloStat::kP95:
      return "p95";
    case SloStat::kP99:
      return "p99";
    case SloStat::kMean:
      return "mean";
    case SloStat::kMin:
      return "min";
    case SloStat::kMax:
      return "max";
    case SloStat::kCount:
      return "count";
    case SloStat::kSkew:
      return "skew";
  }
  return "?";
}

const char* ToString(SloCmp cmp) { return cmp == SloCmp::kLt ? "<" : ">"; }

double SloStatOf(const WindowStats& window, SloStat stat) {
  switch (stat) {
    case SloStat::kP50:
      return window.p50;
    case SloStat::kP95:
      return window.p95;
    case SloStat::kP99:
      return window.p99;
    case SloStat::kMean:
      return window.Mean();
    case SloStat::kMin:
      return window.min;
    case SloStat::kMax:
      return window.max;
    case SloStat::kCount:
      return static_cast<double>(window.count);
    case SloStat::kSkew: {
      const double mean = window.Mean();
      return mean > 0.0 ? window.max / mean : 0.0;
    }
  }
  return 0.0;
}

bool ParseSloRule(const std::string& text, SloRule* out, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "bad SLO rule \"" + text + "\": " + why;
    return false;
  };
  std::istringstream in(text);
  std::string series, stat, cmp, bound;
  in >> series >> stat >> cmp >> bound;
  std::string extra;
  if (in >> extra) return fail("trailing tokens");
  if (series.empty() || stat.empty() || cmp.empty() || bound.empty()) {
    return fail("expected \"<series> <stat> <cmp> <bound>[unit]\"");
  }

  SloRule rule;
  rule.name = text;
  rule.series = series;
  if (stat == "p50") {
    rule.stat = SloStat::kP50;
  } else if (stat == "p95") {
    rule.stat = SloStat::kP95;
  } else if (stat == "p99") {
    rule.stat = SloStat::kP99;
  } else if (stat == "mean") {
    rule.stat = SloStat::kMean;
  } else if (stat == "min") {
    rule.stat = SloStat::kMin;
  } else if (stat == "max") {
    rule.stat = SloStat::kMax;
  } else if (stat == "count") {
    rule.stat = SloStat::kCount;
  } else if (stat == "skew") {
    rule.stat = SloStat::kSkew;
  } else {
    return fail("unknown stat \"" + stat + "\"");
  }
  if (cmp == "<") {
    rule.cmp = SloCmp::kLt;
  } else if (cmp == ">") {
    rule.cmp = SloCmp::kGt;
  } else {
    return fail("comparison must be < or >");
  }

  char* end = nullptr;
  rule.bound = std::strtod(bound.c_str(), &end);
  const std::string unit(end);
  if (end == bound.c_str()) return fail("bound is not a number");
  if (unit == "ns") {
    rule.bound *= 1e-9;
  } else if (unit == "us") {
    rule.bound *= 1e-6;
  } else if (unit == "ms") {
    rule.bound *= 1e-3;
  } else if (!unit.empty() && unit != "s" && unit != "x") {
    return fail("unknown unit \"" + unit + "\"");
  }
  *out = std::move(rule);
  return true;
}

SloWatchdog::SloWatchdog(std::vector<SloRule> rules) {
  rules_.reserve(rules.size());
  for (SloRule& r : rules) rules_.push_back(RuleState{std::move(r), -1, 0});
}

std::vector<SloRule> SloWatchdog::rules() const {
  std::vector<SloRule> copy;
  copy.reserve(rules_.size());
  for (const RuleState& s : rules_) copy.push_back(s.rule);
  return copy;
}

int SloWatchdog::Evaluate(double now_s) {
  int fired = 0;
  auto& metrics = Metrics::Global();
  for (RuleState& state : rules_) {
    TimeSeries* series = Telemetry::Global().Find(state.rule.series);
    if (series == nullptr) continue;
    for (const WindowStats& window : series->ClosedWindows(now_s)) {
      if (window.window <= state.last_window) continue;
      state.last_window = window.window;
      if (window.count < state.rule.min_count) continue;
      const double value = SloStatOf(window, state.rule.stat);
      const bool healthy = state.rule.cmp == SloCmp::kLt
                               ? value < state.rule.bound
                               : value > state.rule.bound;
      if (healthy) {
        state.streak = 0;
        continue;
      }
      ++state.streak;
      if (state.streak < state.rule.sustain_windows) continue;
      ++fired;
      ++violations_total_;
      metrics.counter("slo.violations").Increment();
      metrics.counter("slo.violation." + state.rule.series).Increment();
      metrics.gauge("slo.last_value." + state.rule.series).Set(value);
      // Real-domain instant event in the "slo" category (string args must
      // be literals, so the series is identified by the stat + the flight /
      // metrics entries alongside).
      if (TracingEnabled()) {
        TraceEvent e;
        e.ts_us = Tracer::Global().RealNowUs();
        e.name = "slo.violation";
        e.cat = "slo";
        e.num_args = 3;
        e.args[0] = {"window", static_cast<double>(window.window), nullptr};
        e.args[1] = {"value", value, nullptr};
        e.args[2] = {"bound", state.rule.bound, nullptr};
        Tracer::Global().Emit(e);
      }
      Flight().Record("slo.violation", ToString(state.rule.stat), window.t1_s,
                      {{"window", static_cast<double>(window.window), nullptr},
                       {"value", value, nullptr},
                       {"bound", state.rule.bound, nullptr},
                       {"streak", static_cast<double>(state.streak), nullptr}});
      if (callback_) {
        SloViolation v;
        v.rule = &state.rule;
        v.window = window;
        v.value = value;
        v.streak = state.streak;
        callback_(v);
      }
    }
  }
  return fired;
}

}  // namespace apt::obs
