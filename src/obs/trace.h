// apt::obs tracing: low-overhead spans and counter samples over TWO clock
// domains, exportable as a Chrome/Perfetto trace (see obs/export.h).
//
//  * Real wall time — what the CPU kernels and the fork-join runtime
//    actually spend. Spans are recorded per OS thread (one timeline lane per
//    thread, under the "host" process) via the RAII ScopedSpan or the
//    APT_OBS_SCOPE macro.
//  * Simulated device time — the virtual clocks of a SimContext. Each
//    SimContext registers one trace "process" whose lanes are its logical
//    GPUs; SimContext::Advance / BarrierAll emit one slice per clock
//    advance, named by the caller (gather / alltoall / compute / ...) and
//    categorized by Phase.
//
// Cost discipline: when tracing is disabled — the default — every
// instrumentation point reduces to ONE relaxed atomic load (or to nothing
// at all when compiled out with -DAPT_OBS_ENABLED=0). When enabled, events
// are appended to per-thread buffers, each guarded by its own (uncontended)
// mutex, so recording is thread-safe under the fork-join pool and a flush
// from any thread observes a consistent snapshot. Event names/keys must be
// string literals (or otherwise outlive the tracer): events store pointers.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef APT_OBS_ENABLED
#define APT_OBS_ENABLED 1
#endif

namespace apt::obs {

/// Which clock a trace event's timestamps belong to.
enum class Domain : std::int8_t { kReal = 0, kSim = 1 };

/// One numeric or string annotation on an event. `key` and `str` must be
/// string literals (not owned).
struct TraceArg {
  const char* key = nullptr;
  double num = 0.0;
  const char* str = nullptr;  ///< when non-null the arg is a string
};

inline constexpr int kMaxTraceArgs = 4;

/// The host (real wall time) process id in the exported trace; simulated
/// tracks get ids from Tracer::RegisterSimTrack.
inline constexpr std::int32_t kHostPid = 0;

struct TraceEvent {
  double ts_us = 0.0;   ///< start, microseconds in the event's domain
  double dur_us = 0.0;  ///< duration ('X' events)
  std::int32_t pid = kHostPid;
  std::int32_t tid = 0;
  char ph = 'X';  ///< 'X' complete slice, 'C' counter sample
  Domain domain = Domain::kReal;
  std::int8_t num_args = 0;
  const char* name = nullptr;  ///< literal; not owned
  const char* cat = nullptr;   ///< literal; not owned
  std::array<TraceArg, kMaxTraceArgs> args{};
};

/// A simulated-clock track (one SimContext): `num_lanes` device lanes.
struct SimTrackInfo {
  std::int32_t pid = 0;
  std::string label;
  std::int32_t num_lanes = 0;
  /// Optional per-lane display names; lanes beyond its size (or all lanes,
  /// when empty) fall back to "gpu<lane>".
  std::vector<std::string> lane_names;

  std::string LaneName(std::int32_t lane) const {
    if (lane >= 0 && static_cast<std::size_t>(lane) < lane_names.size()) {
      return lane_names[static_cast<std::size_t>(lane)];
    }
    return "gpu" + std::to_string(lane);
  }
};

#if APT_OBS_ENABLED
namespace detail {
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> on{false};
  return on;
}
}  // namespace detail

/// Runtime master switch; false by default.
inline bool TracingEnabled() {
  return detail::EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetTracingEnabled(bool on) {
  detail::EnabledFlag().store(on, std::memory_order_relaxed);
}
#else
constexpr bool TracingEnabled() { return false; }
inline void SetTracingEnabled(bool) {}
#endif

class Tracer {
 public:
  /// Process-wide tracer (leaked singleton: safe from worker threads at
  /// shutdown).
  static Tracer& Global();

  /// Appends one event to the calling thread's buffer. Real-domain events
  /// get pid/tid overwritten with the host pid and the thread's lane id.
  /// Call only when TracingEnabled() — callers guard, keeping the disabled
  /// path to a single flag load.
  void Emit(TraceEvent e);

  /// Registers a simulated-clock track; returns its trace pid. Lanes named
  /// from `lane_names` where provided, "gpu<lane>" otherwise.
  std::int32_t RegisterSimTrack(std::string label, std::int32_t num_lanes,
                                std::vector<std::string> lane_names = {});

  /// Microseconds of real time since tracer construction.
  double RealNowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
  }

  /// Moves all buffered events out (buffers stay registered). Safe to call
  /// from any thread; concurrent emitters keep writing to their buffers.
  std::vector<TraceEvent> Drain();

  /// Drops all buffered events and the drop counter (sim track
  /// registrations persist: live SimContexts keep their pids).
  void Clear();

  std::vector<SimTrackInfo> SimTracks() const;

  /// Number of host lanes (threads) that have recorded at least one event.
  std::int32_t NumHostLanes() const;

  /// Events discarded because a thread buffer hit its cap.
  std::int64_t DroppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Cap per thread buffer: a runaway trace degrades to counted drops
  /// instead of exhausting memory (~1M events * ~150 B).
  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    std::int32_t tid = 0;
  };

  Tracer() : epoch_(Clock::now()) {}
  ThreadBuffer& LocalBuffer();

  Clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards buffers_ / sim_tracks_ registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<SimTrackInfo> sim_tracks_;
  std::int32_t next_pid_ = kHostPid + 1;
  std::atomic<std::int64_t> dropped_{0};
};

/// Emits a complete slice on a simulated-device lane. Timestamps in
/// simulated SECONDS (converted to trace microseconds here).
void EmitSimSpan(std::int32_t pid, std::int32_t lane, double t0_s, double t1_s,
                 const char* name, const char* cat,
                 std::initializer_list<TraceArg> args = {});

/// EmitSimSpan overload taking a pre-built arg array: the pipelined replay
/// composes slice annotations dynamically (stream tag + micro-batch index +
/// the captured op's own args), which an initializer_list cannot express.
void EmitSimSpan(std::int32_t pid, std::int32_t lane, double t0_s, double t1_s,
                 const char* name, const char* cat, const TraceArg* args,
                 int num_args);

/// Emits a counter sample on a simulated track at simulated time `t_s`.
/// The arg keys become the counter's series names.
void EmitSimCounter(std::int32_t pid, double t_s, const char* name,
                    std::initializer_list<TraceArg> args);

/// RAII real-time span: records wall time from construction to destruction
/// on the calling thread's lane. No-op unless tracing is enabled at
/// construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "cpu",
                      std::initializer_list<TraceArg> args = {}) {
#if APT_OBS_ENABLED
    if (!TracingEnabled()) return;
    active_ = true;
    name_ = name;
    cat_ = cat;
    num_args_ = 0;
    for (const TraceArg& a : args) {
      if (num_args_ == kMaxTraceArgs) break;
      args_[static_cast<std::size_t>(num_args_++)] = a;
    }
    start_us_ = Tracer::Global().RealNowUs();
#else
    (void)name;
    (void)cat;
    (void)args;
#endif
  }

  ~ScopedSpan() {
#if APT_OBS_ENABLED
    if (!active_) return;
    TraceEvent e;
    e.ts_us = start_us_;
    e.dur_us = Tracer::Global().RealNowUs() - start_us_;
    e.ph = 'X';
    e.domain = Domain::kReal;
    e.name = name_;
    e.cat = cat_;
    e.num_args = num_args_;
    e.args = args_;
    Tracer::Global().Emit(e);
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
#if APT_OBS_ENABLED
  bool active_ = false;
  double start_us_ = 0.0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int8_t num_args_ = 0;
  std::array<TraceArg, kMaxTraceArgs> args_{};
#endif
};

/// Sequential stage marker for multi-stage functions (Permute -> Shuffle ->
/// Execute -> Reshuffle): holds at most one live span; Next() closes the
/// current stage and opens the following one on the same thread lane, so
/// call sites avoid nesting every stage in its own block.
class StageSpan {
 public:
  explicit StageSpan(const char* name, const char* cat = "cpu") : cat_(cat) {
    Open(name);
  }
  ~StageSpan() { Close(); }

  void Next(const char* name) {
    Close();
    Open(name);
  }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
#if APT_OBS_ENABLED
  void Open(const char* name) {
    if (!TracingEnabled()) return;
    active_ = true;
    name_ = name;
    start_us_ = Tracer::Global().RealNowUs();
  }
  void Close() {
    if (!active_) return;
    active_ = false;
    TraceEvent e;
    e.ts_us = start_us_;
    e.dur_us = Tracer::Global().RealNowUs() - start_us_;
    e.ph = 'X';
    e.domain = Domain::kReal;
    e.name = name_;
    e.cat = cat_;
    Tracer::Global().Emit(e);
  }

  bool active_ = false;
  double start_us_ = 0.0;
  const char* name_ = nullptr;
#else
  void Open(const char*) {}
  void Close() {}
#endif
  const char* cat_;
};

#define APT_OBS_CONCAT_IMPL(a, b) a##b
#define APT_OBS_CONCAT(a, b) APT_OBS_CONCAT_IMPL(a, b)

#if APT_OBS_ENABLED
/// Scoped real-time span with a literal name (and optional category/args).
#define APT_OBS_SCOPE(...) \
  ::apt::obs::ScopedSpan APT_OBS_CONCAT(apt_obs_scope_, __COUNTER__)(__VA_ARGS__)
#else
#define APT_OBS_SCOPE(...) \
  do {                     \
  } while (false)
#endif

}  // namespace apt::obs
