#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace apt::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; the key already separated
  }
  if (!first_.back()) *os_ << ",";
  first_.back() = false;
}

void JsonWriter::BeginObject() {
  Separate();
  *os_ << "{";
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  first_.pop_back();
  *os_ << "}";
}

void JsonWriter::BeginArray() {
  Separate();
  *os_ << "[";
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  first_.pop_back();
  *os_ << "]";
}

void JsonWriter::Key(std::string_view k) {
  Separate();
  *os_ << "\"" << JsonEscape(k) << "\":";
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  Separate();
  *os_ << "\"" << JsonEscape(v) << "\"";
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    *os_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *os_ << buf;
}

void JsonWriter::Value(std::int64_t v) {
  Separate();
  *os_ << v;
}

void JsonWriter::Value(bool v) {
  Separate();
  *os_ << (v ? "true" : "false");
}

void JsonWriter::RawValue(std::string_view json) {
  Separate();
  *os_ << json;
}

}  // namespace apt::obs
