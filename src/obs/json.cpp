#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace apt::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; the key already separated
  }
  if (!first_.back()) *os_ << ",";
  first_.back() = false;
}

void JsonWriter::BeginObject() {
  Separate();
  *os_ << "{";
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  first_.pop_back();
  *os_ << "}";
}

void JsonWriter::BeginArray() {
  Separate();
  *os_ << "[";
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  first_.pop_back();
  *os_ << "]";
}

void JsonWriter::Key(std::string_view k) {
  Separate();
  *os_ << "\"" << JsonEscape(k) << "\":";
  pending_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  Separate();
  *os_ << "\"" << JsonEscape(v) << "\"";
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    *os_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *os_ << buf;
}

void JsonWriter::Value(std::int64_t v) {
  Separate();
  *os_ << v;
}

void JsonWriter::Value(bool v) {
  Separate();
  *os_ << (v ? "true" : "false");
}

void JsonWriter::RawValue(std::string_view json) {
  Separate();
  *os_ << json;
}

// --- reader ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out)) return Fail(error);
    SkipWs();
    if (pos_ != s_.size()) return Fail(error, "trailing garbage");
    return true;
  }

 private:
  bool Fail(std::string* error, const char* why = "malformed JSON") {
    if (error != nullptr) {
      std::ostringstream os;
      os << why << " at byte " << pos_;
      *error = os.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  /// Appends the UTF-8 encoding of `code` (the \uXXXX escape payload).
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      const char c = s_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return false;
      }
    }
    return Consume('"');
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipWs();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        SkipWs();
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->obj.insert_or_assign(std::move(key), std::move(v));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipWs();
      if (Consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->arr.push_back(std::move(v));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::kBool;
      out->b = true;
      return ConsumeLiteral("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::kBool;
      out->b = false;
      return ConsumeLiteral("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::kNull;
      return ConsumeLiteral("null");
    }
    // strtod needs NUL termination the view cannot guarantee; numbers are
    // short, so bounce through a bounded local buffer.
    char buf[64];
    const std::size_t n = std::min(s_.size() - pos_, sizeof(buf) - 1);
    s_.copy(buf, n, pos_);
    buf[n] = '\0';
    char* end = nullptr;
    out->num = std::strtod(buf, &end);
    if (end == buf) return false;
    pos_ += static_cast<std::size_t>(end - buf);
    out->kind = JsonValue::kNumber;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

bool ParseJsonFile(const std::string& path, JsonValue* out, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  return ParseJson(buf.str(), out, error);
}

}  // namespace apt::obs
