#include "obs/histogram.h"

#include <cmath>
#include <cstring>

namespace apt::obs {

namespace {

/// Fixed-point encoding of a value (round-to-nearest nanounits). Saturates
/// instead of overflowing for absurd inputs so the arithmetic stays defined.
std::int64_t ToFixedPoint(double v) {
  const double scaled = v * Histogram::kFixedPointScale;
  if (scaled >= 9.2e18) return INT64_MAX;
  if (scaled <= -9.2e18) return INT64_MIN;
  return std::llround(scaled);
}

void AtomicMin(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketIndexOf(double v) {
  // Everything below the range — zero, negatives, denormals-below-2^kMinExp,
  // and NaN (every comparison with NaN is false) — is underflow.
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;
  if (v >= std::ldexp(1.0, kMaxExp)) return kNumBuckets - 1;
  // v is a positive normal double in range: the biased exponent and the top
  // kSubBucketBits mantissa bits identify the log bucket exactly.
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  const int sub = static_cast<int>((bits >> (52 - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const int exp = kMinExp + (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp);
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) return std::ldexp(1.0, kMinExp);
  if (index >= kNumBuckets - 1) return HUGE_VAL;
  const int exp = kMinExp + (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  if (sub == kSubBuckets - 1) return std::ldexp(1.0, exp + 1);
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp);
}

void Histogram::Record(double v) {
  buckets_[static_cast<std::size_t>(BucketIndexOf(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t fp = ToFixedPoint(v);
  sum_fp_.fetch_add(fp, std::memory_order_relaxed);
  AtomicMin(min_fp_, fp);
  AtomicMax(max_fp_, fp);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::int64_t n = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (n != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(n,
                                                      std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_fp_.fetch_add(other.sum_fp_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  const std::int64_t omin = other.min_fp_.load(std::memory_order_relaxed);
  if (omin != kEmptyMin) AtomicMin(min_fp_, omin);
  const std::int64_t omax = other.max_fp_.load(std::memory_order_relaxed);
  if (omax != kEmptyMax) AtomicMax(max_fp_, omax);
}

void Histogram::CopyFrom(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)].store(
        other.buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_fp_.store(other.sum_fp_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  min_fp_.store(other.min_fp_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  max_fp_.store(other.max_fp_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_fp_.store(0, std::memory_order_relaxed);
  min_fp_.store(kEmptyMin, std::memory_order_relaxed);
  max_fp_.store(kEmptyMax, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  const std::int64_t n = Count();
  return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Min() const {
  const std::int64_t fp = min_fp_.load(std::memory_order_relaxed);
  return fp == kEmptyMin ? 0.0
                         : static_cast<double>(fp) / kFixedPointScale;
}

double Histogram::Max() const {
  const std::int64_t fp = max_fp_.load(std::memory_order_relaxed);
  return fp == kEmptyMax ? 0.0
                         : static_cast<double>(fp) / kFixedPointScale;
}

double Histogram::ValueAtQuantile(double q) const {
  const std::int64_t n = Count();
  if (n <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: the ceil(q*n)-th smallest value (1-based), matching the
  // sorted-vector percentile the serving report and trace analyzer use.
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += BucketCount(i);
    if (seen >= rank) {
      // The overflow bucket has no finite upper bound; report the exact max.
      if (i == kNumBuckets - 1) return Max();
      return BucketUpperBound(i);
    }
  }
  return Max();
}

}  // namespace apt::obs
