// Graph data parallel: each device processes its seeds end to end; the only
// inter-device communication is the DDP gradient allreduce (by the trainer).
//
// Pipelined execution (EngineOptions::pipeline_depth > 1): the feature
// gathers (kLoad) are the step's only comm-stream ops, so the replay overlaps
// micro-batch m+1's gather with micro-batch m's Execute. The gradient
// allreduce happens outside the pipelined scope (serial tail by design).
#include "engine/executor.h"
#include "engine/exec_common.h"
#include "engine/quantized_grad.h"
#include "obs/trace.h"

namespace apt {

namespace {

class GdpExecutor final : public StrategyExecutor {
 public:
  using StrategyExecutor::StrategyExecutor;

  StepStats Step(std::vector<DeviceBatch>& batches) override {
    std::int64_t total_seeds = 0;
    for (const auto& b : batches) {
      total_seeds += static_cast<std::int64_t>(b.labels.size());
    }
    StepStats agg;
    agg.num_seeds = total_seeds;
    // GDP has no shuffle stages: the whole step is one Execute.
    APT_OBS_SCOPE("execute", "gdp");
    const std::int64_t d = ctx_->feature_dim();
    // Quantized mode: the layer-0 parameter grads of ALL devices go through
    // the canonical grid-rounded path (the only GDP reduction whose grouping
    // differs from DNP's), so each device's backward stops at layer 1 and
    // its layer-0 inputs/gradients are kept alive until the joint pass.
    const bool quantized = UseQuantizedLayer0(*ctx_);
    const auto c = static_cast<std::size_t>(ctx_->num_devices());
    std::vector<ModelTape> tapes(c);
    std::vector<Tensor> grad_raw0(c);
    std::vector<std::vector<QuantizedBlockGrad>> qblocks(c);
    for (DeviceId dev = 0; dev < ctx_->num_devices(); ++dev) {
      DeviceBatch& batch = batches[static_cast<std::size_t>(dev)];
      if (batch.labels.empty()) continue;
      const auto& blocks = batch.sample.blocks;
      const auto input_nodes = batch.sample.input_nodes();
      Tensor feats(static_cast<std::int64_t>(input_nodes.size()), d);
      ctx_->store->Gather(dev, input_nodes, 0, d, feats);
      ctx_->sim->NoteTransient(dev, 2 * feats.bytes());

      ModelTape& tape = tapes[static_cast<std::size_t>(dev)];
      const Tensor logits = ctx_->model(dev).ForwardFrom(0, blocks, feats, &tape);
      Tensor grad_logits;
      const StepStats s =
          SeedLossAndGrad(*ctx_, dev, batch, logits, total_seeds, grad_logits);
      if (quantized) {
        grad_raw0[static_cast<std::size_t>(dev)] =
            ctx_->model(dev).BackwardTo(1, blocks, tape, grad_logits);
        qblocks[static_cast<std::size_t>(dev)].push_back(QuantizedBlockGrad{
            blocks[0].num_dst, tape.layer_ctx[0].get(),
            &grad_raw0[static_cast<std::size_t>(dev)]});
      } else {
        ctx_->model(dev).BackwardTo(0, blocks, tape, grad_logits);
      }
      ChargeStepCompute(*ctx_, dev, blocks, 0);
      agg.loss += s.loss;
      agg.correct += s.correct;
    }
    if (quantized) QuantizedLayer0Backward(*ctx_, qblocks);
    return agg;
  }
};

}  // namespace

std::unique_ptr<StrategyExecutor> MakeGdpExecutor(EngineCtx& ctx) {
  return std::make_unique<GdpExecutor>(ctx);
}

}  // namespace apt
