// Graph data parallel: each device processes its seeds end to end; the only
// inter-device communication is the DDP gradient allreduce (by the trainer).
//
// Pipelined execution (EngineOptions::pipeline_depth > 1): the feature
// gathers (kLoad) are the step's only comm-stream ops, so the replay overlaps
// micro-batch m+1's gather with micro-batch m's Execute. The gradient
// allreduce happens outside the pipelined scope (serial tail by design).
#include "engine/executor.h"
#include "engine/exec_common.h"
#include "obs/trace.h"

namespace apt {

namespace {

class GdpExecutor final : public StrategyExecutor {
 public:
  using StrategyExecutor::StrategyExecutor;

  StepStats Step(std::vector<DeviceBatch>& batches) override {
    std::int64_t total_seeds = 0;
    for (const auto& b : batches) {
      total_seeds += static_cast<std::int64_t>(b.labels.size());
    }
    StepStats agg;
    agg.num_seeds = total_seeds;
    // GDP has no shuffle stages: the whole step is one Execute.
    APT_OBS_SCOPE("execute", "gdp");
    const std::int64_t d = ctx_->feature_dim();
    for (DeviceId dev = 0; dev < ctx_->num_devices(); ++dev) {
      DeviceBatch& batch = batches[static_cast<std::size_t>(dev)];
      if (batch.labels.empty()) continue;
      const auto& blocks = batch.sample.blocks;
      const auto input_nodes = batch.sample.input_nodes();
      Tensor feats(static_cast<std::int64_t>(input_nodes.size()), d);
      ctx_->store->Gather(dev, input_nodes, 0, d, feats);
      ctx_->sim->NoteTransient(dev, 2 * feats.bytes());

      ModelTape tape;
      const Tensor logits = ctx_->model(dev).ForwardFrom(0, blocks, feats, &tape);
      Tensor grad_logits;
      const StepStats s =
          SeedLossAndGrad(*ctx_, dev, batch, logits, total_seeds, grad_logits);
      ctx_->model(dev).BackwardTo(0, blocks, tape, grad_logits);
      ChargeStepCompute(*ctx_, dev, blocks, 0);
      agg.loss += s.loss;
      agg.correct += s.correct;
    }
    return agg;
  }
};

}  // namespace

std::unique_ptr<StrategyExecutor> MakeGdpExecutor(EngineCtx& ctx) {
  return std::make_unique<GdpExecutor>(ctx);
}

}  // namespace apt
