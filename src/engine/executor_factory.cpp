#include "engine/executor.h"

namespace apt {

std::unique_ptr<StrategyExecutor> MakeGdpExecutor(EngineCtx& ctx);
std::unique_ptr<StrategyExecutor> MakeNfpExecutor(EngineCtx& ctx);
std::unique_ptr<StrategyExecutor> MakeSnpExecutor(EngineCtx& ctx);
std::unique_ptr<StrategyExecutor> MakeDnpExecutor(EngineCtx& ctx);

std::unique_ptr<StrategyExecutor> MakeExecutor(Strategy strategy, EngineCtx& ctx) {
  switch (strategy) {
    case Strategy::kGDP:
      return MakeGdpExecutor(ctx);
    case Strategy::kNFP:
      return MakeNfpExecutor(ctx);
    case Strategy::kSNP:
      return MakeSnpExecutor(ctx);
    case Strategy::kDNP:
      return MakeDnpExecutor(ctx);
  }
  throw Error("unknown strategy");
}

}  // namespace apt
