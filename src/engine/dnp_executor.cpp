// Destination node parallel (the paper's proposed strategy): layer-1 is
// partitioned by *destination* node. Each sampled destination travels, with
// its full sampled edge list, to the device owning its graph partition; the
// owner loads all source features (its cache covers its partition plus its
// 1-hop neighborhood), computes the COMPLETE layer-1 embedding, and ships a
// single hidden-embedding row back — at most one shuffled embedding per
// destination, the property that makes DNP cheap (§3.3).
//
// Because the owner sees every source of a destination, the same code path
// serves both GraphSAGE and GAT (no attention penalty — Fig 10).
//
// Pipelined execution (EngineOptions::pipeline_depth > 1): the destination
// all-to-all, the owners' feature gathers (kLoad) and the embedding-row
// return shuffle ride the per-device comm stream; the owner-side layer-1
// compute overlaps with the neighbouring micro-batches' shuffles.
#include <unordered_map>

#include "engine/exec_common.h"
#include "engine/executor.h"
#include "engine/quantized_grad.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace apt {

namespace {

/// Destination records shipped from origin o to owner g.
struct DnpDstBatch {
  std::vector<std::int64_t> dst_local;   ///< row in origin's layer-1 output
  std::vector<NodeId> dst_global;
  std::vector<std::int64_t> src_indptr;  ///< size n+1
  std::vector<NodeId> srcs;              ///< global source ids (per edge)

  std::int64_t size() const { return static_cast<std::int64_t>(dst_local.size()); }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(dst_local.size() * 8 + dst_global.size() * 8 +
                                     src_indptr.size() * 8 + srcs.size() * 8);
  }
};

class DnpExecutor final : public StrategyExecutor {
 public:
  using StrategyExecutor::StrategyExecutor;

  StepStats Step(std::vector<DeviceBatch>& batches) override {
    const std::int32_t c = ctx_->num_devices();
    const std::int64_t d = ctx_->feature_dim();
    std::int64_t total_seeds = 0;
    for (const auto& b : batches) {
      total_seeds += static_cast<std::int64_t>(b.labels.size());
    }
    StepStats agg;
    agg.num_seeds = total_seeds;

    // ---- Permute: group destinations by owner. ---------------------------
    obs::StageSpan stage("permute", "dnp");
    std::vector<std::vector<DnpDstBatch>> sends(
        static_cast<std::size_t>(c), std::vector<DnpDstBatch>(static_cast<std::size_t>(c)));
    for (DeviceId o = 0; o < c; ++o) {
      const Block& b = batches[static_cast<std::size_t>(o)].sample.blocks[0];
      for (std::int64_t i = 0; i < b.num_dst; ++i) {
        const NodeId dst = b.src_nodes[static_cast<std::size_t>(i)];
        const auto g = static_cast<std::size_t>(ctx_->OwnerOf(dst));
        DnpDstBatch& db = sends[static_cast<std::size_t>(o)][g];
        if (db.src_indptr.empty()) db.src_indptr.push_back(0);
        db.dst_local.push_back(i);
        db.dst_global.push_back(dst);
        for (std::int64_t e = b.indptr[static_cast<std::size_t>(i)];
             e < b.indptr[static_cast<std::size_t>(i) + 1]; ++e) {
          db.srcs.push_back(
              b.src_nodes[static_cast<std::size_t>(b.col[static_cast<std::size_t>(e)])]);
        }
        db.src_indptr.push_back(static_cast<std::int64_t>(db.srcs.size()));
      }
    }

    // ---- Shuffle destinations to their owners. ---------------------------
    stage.Next("shuffle");
    auto recv = ctx_->comm->AllToAllObjects(
        std::move(sends), [](const DnpDstBatch& b) { return b.bytes(); },
        Phase::kSample);

    // ---- Execute: owners build a local block and run the full layer. ------
    stage.Next("execute");
    struct OwnerWork {
      Block block;                             ///< owner-local layer-1 graph
      std::vector<DeviceId> origin_of;         ///< per local dst
      std::vector<std::int64_t> dst_local_of;  ///< per local dst
      std::unique_ptr<LayerContext> saved;
    };
    std::vector<OwnerWork> work(static_cast<std::size_t>(c));
    std::vector<std::vector<Tensor>> out_sends(
        static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
    for (DeviceId g = 0; g < c; ++g) {
      OwnerWork& w = work[static_cast<std::size_t>(g)];
      // Destination rows come first (Block prefix convention); each record
      // keeps its own row even if the same node arrives from two origins,
      // because its sampled edge lists differ per origin.
      Block& lb = w.block;
      for (DeviceId o = 0; o < c; ++o) {
        const DnpDstBatch& db = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        for (std::int64_t r = 0; r < db.size(); ++r) {
          lb.src_nodes.push_back(db.dst_global[static_cast<std::size_t>(r)]);
          w.origin_of.push_back(o);
          w.dst_local_of.push_back(db.dst_local[static_cast<std::size_t>(r)]);
        }
      }
      lb.num_dst = static_cast<std::int64_t>(lb.src_nodes.size());
      lb.indptr.push_back(0);
      // Sources are deduplicated within each origin's batch only (one DGL
      // gather per arriving virtual-node batch, matching the per-block
      // loading semantics the cost model assumes). Destination prefix rows
      // are never shared as source slots: duplicate destinations from
      // different origins keep distinct rows and distinct edge lists.
      std::unordered_map<NodeId, std::int64_t> local;
      std::int64_t cursor = 0;
      for (DeviceId o = 0; o < c; ++o) {
        const DnpDstBatch& db = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        local.clear();
        for (std::int64_t r = 0; r < db.size(); ++r, ++cursor) {
          for (std::int64_t e = db.src_indptr[static_cast<std::size_t>(r)];
               e < db.src_indptr[static_cast<std::size_t>(r) + 1]; ++e) {
            const NodeId u = db.srcs[static_cast<std::size_t>(e)];
            auto [it, inserted] = local.try_emplace(
                u, static_cast<std::int64_t>(lb.src_nodes.size()));
            if (inserted) lb.src_nodes.push_back(u);
            lb.col.push_back(it->second);
          }
          lb.indptr.push_back(static_cast<std::int64_t>(lb.col.size()));
        }
      }
      if (lb.num_dst == 0) continue;

      Tensor feats(lb.num_src(), d);
      ctx_->store->Gather(g, lb.src_nodes, 0, d, feats);
      ctx_->sim->NoteTransient(g, 2 * feats.bytes());
      GnnLayer& layer0 = ctx_->model(g).layer(0);
      const Tensor out = layer0.Forward(lb.csr(), lb.num_dst, feats, &w.saved);
      ctx_->sim->ChargeCompute(
          g, layer0.ForwardFlops(lb.num_src(), lb.num_dst, lb.num_edges()));

      // Split output rows back per origin (rows are grouped by origin).
      std::int64_t row = 0;
      for (DeviceId o = 0; o < c; ++o) {
        const DnpDstBatch& db = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        if (db.size() == 0) continue;
        Tensor rows(db.size(), out.cols());
        std::copy_n(out.row(row), db.size() * out.cols(), rows.data());
        row += db.size();
        out_sends[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(rows);
      }
    }

    // ---- Reshuffle: one embedding row per destination back to origins. ----
    stage.Next("reshuffle");
    auto out_recv = ctx_->comm->AllToAllTensors(out_sends, Phase::kTrain);

    // ---- Remainder of the model at origins. --------------------------------
    stage.Next("execute");
    std::vector<Tensor> grad_raw0(static_cast<std::size_t>(c));
    for (DeviceId o = 0; o < c; ++o) {
      DeviceBatch& batch = batches[static_cast<std::size_t>(o)];
      if (batch.labels.empty()) continue;
      const Block& b = batch.sample.blocks[0];
      Tensor raw0(b.num_dst, ctx_->model(o).layer(0).out_dim());
      for (DeviceId g = 0; g < c; ++g) {
        const Tensor& rows = out_recv[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)];
        if (rows.rows() == 0) continue;
        // Row r of `rows` corresponds to dst_local stored at the owner; we
        // recover the mapping from the send-side batch we built earlier.
        const DnpDstBatch& db = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        ScatterRows(rows, db.dst_local, raw0);
      }
      const auto& blocks = batch.sample.blocks;
      ModelTape tape;
      const Tensor logits = ctx_->model(o).ForwardFrom(1, blocks, raw0, &tape);
      Tensor grad_logits;
      const StepStats s =
          SeedLossAndGrad(*ctx_, o, batch, logits, total_seeds, grad_logits);
      grad_raw0[static_cast<std::size_t>(o)] =
          ctx_->model(o).BackwardTo(1, blocks, tape, grad_logits);
      ChargeStepCompute(*ctx_, o, blocks, 1);
      agg.loss += s.loss;
      agg.correct += s.correct;
    }

    // ---- Backward shuffle: destination grads to the owners. ----------------
    stage.Next("reshuffle");
    std::vector<std::vector<Tensor>> grad_sends(
        static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
    for (DeviceId o = 0; o < c; ++o) {
      const Tensor& go = grad_raw0[static_cast<std::size_t>(o)];
      if (go.rows() == 0) continue;
      for (DeviceId g = 0; g < c; ++g) {
        const DnpDstBatch& db = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        if (db.size() == 0) continue;
        Tensor rows(db.size(), go.cols());
        GatherRows(go, db.dst_local, rows);
        grad_sends[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)] = std::move(rows);
      }
    }
    auto grad_recv = ctx_->comm->AllToAllTensors(grad_sends, Phase::kTrain);

    // ---- Layer-1 backward at the owners. -----------------------------------
    // Quantized mode: the owner-grouped layer-0 parameter-grad sum goes
    // through the same canonical grid-rounded path GDP uses, making the two
    // groupings bit-identical. Owner grad tensors must outlive the joint
    // pass, so they live in `grad_outs` rather than the loop body.
    stage.Next("execute");
    const bool quantized = UseQuantizedLayer0(*ctx_);
    std::vector<Tensor> grad_outs(static_cast<std::size_t>(c));
    std::vector<std::vector<QuantizedBlockGrad>> qblocks(
        static_cast<std::size_t>(c));
    for (DeviceId g = 0; g < c; ++g) {
      OwnerWork& w = work[static_cast<std::size_t>(g)];
      if (w.block.num_dst == 0) continue;
      Tensor& grad_out = grad_outs[static_cast<std::size_t>(g)];
      grad_out = Tensor(w.block.num_dst, ctx_->model(g).layer(0).out_dim());
      std::int64_t row = 0;
      for (DeviceId o = 0; o < c; ++o) {
        const DnpDstBatch& db = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        if (db.size() == 0) continue;
        const Tensor& rows =
            grad_recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
        APT_CHECK_EQ(rows.rows(), db.size());
        std::copy_n(rows.data(), rows.numel(), grad_out.row(row));
        row += db.size();
      }
      GnnLayer& layer0 = ctx_->model(g).layer(0);
      if (quantized) {
        qblocks[static_cast<std::size_t>(g)].push_back(
            QuantizedBlockGrad{w.block.num_dst, w.saved.get(), &grad_out});
      } else {
        layer0.Backward(w.block.csr(), w.block.num_dst, *w.saved, grad_out);
      }
      ctx_->sim->ChargeCompute(
          g, layer0.BackwardFlops(w.block.num_src(), w.block.num_dst,
                                  w.block.num_edges()));
    }
    if (quantized) QuantizedLayer0Backward(*ctx_, qblocks);
    return agg;
  }
};

}  // namespace

std::unique_ptr<StrategyExecutor> MakeDnpExecutor(EngineCtx& ctx) {
  return std::make_unique<DnpExecutor>(ctx);
}

}  // namespace apt
