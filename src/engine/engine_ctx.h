// Engine context: everything a strategy executor needs to run a step.
#pragma once

#include <memory>
#include <vector>

#include "comm/collectives.h"
#include "core/types.h"
#include "engine/engine_types.h"
#include "feature/feature_store.h"
#include "graph/dataset.h"
#include "model/gnn_model.h"
#include "sim/sim_context.h"

namespace apt {

struct EngineCtx {
  SimContext* sim = nullptr;
  Communicator* comm = nullptr;
  FeatureStore* store = nullptr;
  const Dataset* dataset = nullptr;
  /// node -> owning device (parts map 1:1 onto devices).
  const std::vector<PartId>* partition = nullptr;
  /// One identically-initialized model replica per device (DDP).
  std::vector<std::unique_ptr<GnnModel>>* models = nullptr;
  EngineOptions opts;

  std::int32_t num_devices() const { return sim->num_devices(); }
  ModelKind model_kind() const { return (*models)[0]->config().kind; }
  GnnModel& model(DeviceId d) { return *(*models)[static_cast<std::size_t>(d)]; }
  PartId OwnerOf(NodeId v) const { return (*partition)[static_cast<std::size_t>(v)]; }
  std::int64_t feature_dim() const { return dataset->feature_dim(); }
};

}  // namespace apt
