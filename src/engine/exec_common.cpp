#include "engine/exec_common.h"

#include <algorithm>

#include "sampling/neighbor_sampler.h"
#include "tensor/ops.h"

namespace apt {

std::vector<std::vector<NodeId>> AssignSeeds(const EngineCtx& ctx,
                                             std::span<const NodeId> step_seeds) {
  const auto c = static_cast<std::size_t>(ctx.num_devices());
  std::vector<std::vector<NodeId>> out(c);
  if (ctx.opts.seed_assignment == SeedAssignment::kChunked) {
    const std::size_t n = step_seeds.size();
    const std::size_t chunk = (n + c - 1) / c;
    for (std::size_t d = 0; d < c; ++d) {
      const std::size_t lo = std::min(n, d * chunk);
      const std::size_t hi = std::min(n, lo + chunk);
      out[d].assign(step_seeds.begin() + lo, step_seeds.begin() + hi);
    }
  } else {
    for (NodeId s : step_seeds) {
      out[static_cast<std::size_t>(ctx.OwnerOf(s))].push_back(s);
    }
  }
  return out;
}

double SampleTreeEdges(const SampledBatch& batch) {
  // UVA sampling performs one random topology read per (frontier entry,
  // sampled slot) pair; the frontier is the per-seed expansion MULTISET —
  // deduplication only compacts the node-id lists afterwards. We replay the
  // exact multiset tree by propagating each node's multiplicity through the
  // sampled blocks (seeds start at multiplicity 1; a sampled neighbor
  // inherits its destination's multiplicity). This matches large-graph
  // behaviour, where frontiers of distinct seeds barely overlap; at our
  // scaled-down sizes, charging deduplicated counts would grant
  // clustered-seed strategies an outsized sampling discount.
  double tree_edges = 0.0;
  std::vector<double> mult;
  for (auto it = batch.blocks.rbegin(); it != batch.blocks.rend(); ++it) {
    const Block& b = *it;
    if (mult.empty()) {
      mult.assign(static_cast<std::size_t>(b.num_dst), 1.0);
    }
    std::vector<double> next(static_cast<std::size_t>(b.num_src()), 0.0);
    for (std::int64_t i = 0; i < b.num_dst; ++i) {
      const double m_i = mult[static_cast<std::size_t>(i)];
      next[static_cast<std::size_t>(i)] += m_i;  // dst carries into frontier
      const std::int64_t deg = b.indptr[static_cast<std::size_t>(i) + 1] -
                               b.indptr[static_cast<std::size_t>(i)];
      tree_edges += m_i * static_cast<double>(deg);
      for (std::int64_t e = b.indptr[static_cast<std::size_t>(i)];
           e < b.indptr[static_cast<std::size_t>(i) + 1]; ++e) {
        next[static_cast<std::size_t>(b.col[static_cast<std::size_t>(e)])] += m_i;
      }
    }
    mult = std::move(next);
  }
  return tree_edges;
}

double SampleSeconds(const EngineCtx& ctx, DeviceId dev, const SampledBatch& batch) {
  const MachineSpec& m = ctx.sim->cluster().machine(ctx.sim->cluster().MachineOf(dev));
  return SampleTreeEdges(batch) * m.cpu_sample_edge_s +
         static_cast<double>(batch.blocks.size()) * m.gpu.kernel_launch_s;
}

std::vector<DeviceBatch> SampleDeviceBatches(
    EngineCtx& ctx, const std::vector<std::vector<NodeId>>& seeds_per_device,
    Rng& step_rng) {
  NeighborSampler sampler(ctx.dataset->graph, ctx.opts.fanouts);
  const auto c = static_cast<std::size_t>(ctx.num_devices());
  std::vector<DeviceBatch> batches(c);
  for (std::size_t d = 0; d < c; ++d) {
    Rng dev_rng = step_rng.Fork(d);
    DeviceBatch& batch = batches[d];
    batch.sample = sampler.Sample(seeds_per_device[d], dev_rng);
    batch.labels.reserve(seeds_per_device[d].size());
    for (NodeId s : seeds_per_device[d]) {
      batch.labels.push_back(ctx.dataset->labels[static_cast<std::size_t>(s)]);
    }
    ctx.sim->Advance(static_cast<DeviceId>(d),
                     SampleSeconds(ctx, static_cast<DeviceId>(d), batch.sample),
                     Phase::kSample);
  }
  return batches;
}

StepStats SeedLossAndGrad(EngineCtx& ctx, DeviceId dev, const DeviceBatch& batch,
                          const Tensor& logits, std::int64_t total_seeds,
                          Tensor& grad_logits) {
  (void)ctx;
  (void)dev;
  StepStats stats;
  stats.num_seeds = static_cast<std::int64_t>(batch.labels.size());
  if (stats.num_seeds == 0) {
    grad_logits = Tensor(0, logits.cols());
    return stats;
  }
  grad_logits = Tensor(logits.rows(), logits.cols());
  const float mean_loss =
      SoftmaxCrossEntropy(logits, batch.labels, &grad_logits, &stats.correct);
  // Per-device grad is d(device mean)/d logits; rescale so the DDP *sum*
  // over devices equals the gradient of the global per-seed mean.
  const float w = static_cast<float>(stats.num_seeds) / static_cast<float>(total_seeds);
  Scale(grad_logits, w);
  stats.loss = static_cast<double>(mean_loss) * w;
  return stats;
}

void AllReduceGradients(EngineCtx& ctx) {
  const auto c = static_cast<std::size_t>(ctx.num_devices());
  // Flatten each replica's grads into one buffer (the packed-bucket trick
  // DDP uses) so a single ring allreduce covers the whole model.
  std::vector<Tensor> flat(c);
  std::int64_t total = 0;
  {
    std::vector<Param*> params = ctx.model(0).Params();
    for (const Param* p : params) total += p->grad.numel();
  }
  for (std::size_t d = 0; d < c; ++d) {
    flat[d] = Tensor(1, total);
    std::int64_t off = 0;
    for (Param* p : ctx.model(static_cast<DeviceId>(d)).Params()) {
      std::copy_n(p->grad.data(), p->grad.numel(), flat[d].data() + off);
      off += p->grad.numel();
    }
  }
  std::vector<Tensor*> ptrs;
  for (auto& t : flat) ptrs.push_back(&t);
  ctx.comm->AllReduceSum(ptrs, Phase::kTrain, /*gradient_sync=*/true);
  for (std::size_t d = 0; d < c; ++d) {
    std::int64_t off = 0;
    for (Param* p : ctx.model(static_cast<DeviceId>(d)).Params()) {
      std::copy_n(flat[d].data() + off, p->grad.numel(), p->grad.data());
      off += p->grad.numel();
    }
  }
}

void ChargeStepCompute(EngineCtx& ctx, DeviceId dev, std::span<const Block> blocks,
                       int first_layer) {
  GnnModel& model = ctx.model(dev);
  double flops = 0.0;
  for (int k = first_layer; k < model.num_layers(); ++k) {
    const Block& b = blocks[static_cast<std::size_t>(k)];
    flops += model.layer(k).ForwardFlops(b.num_src(), b.num_dst, b.num_edges()) +
             model.layer(k).BackwardFlops(b.num_src(), b.num_dst, b.num_edges());
  }
  ctx.sim->ChargeCompute(dev, flops);
}

}  // namespace apt
