// Strategy executor interface: one forward+backward global step.
//
// All four executors implement the paper's four-stage decomposition —
// Permute (reorganize sampled subgraphs), Shuffle (move computation graphs),
// Execute (feature loading + kernels), Reshuffle (move hidden embeddings
// back) — differing only in which tensor dimension they partition.
//
// Contract: after Step() returns, every device's model replica holds its
// *local* accumulated gradients; the trainer performs the DDP allreduce and
// optimizer step. Gradients must be such that the allreduce SUM equals the
// gradient of the global per-seed mean loss.
#pragma once

#include <memory>
#include <vector>

#include "engine/engine_ctx.h"
#include "engine/engine_types.h"

namespace apt {

class StrategyExecutor {
 public:
  explicit StrategyExecutor(EngineCtx& ctx) : ctx_(&ctx) {}
  virtual ~StrategyExecutor() = default;

  virtual StepStats Step(std::vector<DeviceBatch>& batches) = 0;

 protected:
  EngineCtx* ctx_;
};

std::unique_ptr<StrategyExecutor> MakeExecutor(Strategy strategy, EngineCtx& ctx);

}  // namespace apt
