// Node feature parallel (P3-style): input features and the layer-1 weight
// are co-partitioned by dimension; every device receives every device's
// layer-1 computation graph (AllBroadcast), computes partial layer-1
// outputs from its dimension slice, and a SparseAllreduce merges them.
//
// Mean aggregation commutes with the linear projection, so
//   sum_g (agg(H[:, g]) W[g, :]) == agg(H) W,
// which is what makes the NFP result bit-for-bit semantically equal to GDP.
//
// GAT path: partial *projections* z are allreduced for all layer-1 source
// nodes (attention itself cannot be dimension-partitioned because softmax
// needs complete logits); backward broadcasts grad_z so each device can form
// its weight-slice gradient. This is the "extra communication" and
// "intermediate tensors exceed GPU memory" behaviour of Fig 10.
//
// Pipelined execution (EngineOptions::pipeline_depth > 1): the graph
// AllBroadcast, the dimension-slice feature gathers (kLoad) and the partial
// allreduce / grad broadcast all land on the per-device comm stream, so NFP
// — the comm-heaviest strategy — gains the most from overlap; only the
// projection/aggregation compute stays on the compute stream.
#include "engine/exec_common.h"
#include "engine/executor.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace apt {

namespace {

/// Row range [lo, hi) of the feature dimension owned by dev.
std::pair<std::int64_t, std::int64_t> DimSlice(std::int64_t dim, std::int32_t num_devices,
                                               DeviceId dev) {
  const std::int64_t base = dim / num_devices;
  const std::int64_t extra = dim % num_devices;
  const std::int64_t lo = dev * base + std::min<std::int64_t>(dev, extra);
  const std::int64_t hi = lo + base + (dev < extra ? 1 : 0);
  return {lo, hi};
}

/// Copies rows [lo, hi) of a weight matrix into a contiguous tensor.
Tensor RowSlice(const Tensor& w, std::int64_t lo, std::int64_t hi) {
  Tensor out(hi - lo, w.cols());
  std::copy_n(w.row(lo), (hi - lo) * w.cols(), out.data());
  return out;
}

/// Adds `slice` into rows [lo, hi) of grad.
void AddRowSlice(Tensor& grad, std::int64_t lo, const Tensor& slice) {
  for (std::int64_t r = 0; r < slice.rows(); ++r) {
    float* dst = grad.row(lo + r);
    const float* src = slice.row(r);
    for (std::int64_t j = 0; j < slice.cols(); ++j) dst[j] += src[j];
  }
}

class NfpExecutor final : public StrategyExecutor {
 public:
  using StrategyExecutor::StrategyExecutor;

  StepStats Step(std::vector<DeviceBatch>& batches) override {
    if (ctx_->model_kind() == ModelKind::kSage) return StepSage(batches);
    return StepGat(batches);
  }

 private:
  StepStats StepSage(std::vector<DeviceBatch>& batches);
  StepStats StepGat(std::vector<DeviceBatch>& batches);
};

StepStats NfpExecutor::StepSage(std::vector<DeviceBatch>& batches) {
  const std::int32_t c = ctx_->num_devices();
  const std::int64_t d = ctx_->feature_dim();
  std::int64_t total_seeds = 0;
  for (const auto& b : batches) total_seeds += static_cast<std::int64_t>(b.labels.size());
  StepStats agg;
  agg.num_seeds = total_seeds;

  // Shuffle: broadcast every device's layer-1 computation graph.
  obs::StageSpan stage("shuffle", "nfp");
  std::vector<Block> block0s;
  block0s.reserve(static_cast<std::size_t>(c));
  for (const auto& b : batches) block0s.push_back(b.sample.blocks[0]);
  const std::vector<Block> all0 = ctx_->comm->AllBroadcastObjects(
      std::move(block0s), [](const Block& b) { return b.bytes(); }, Phase::kSample);

  stage.Next("execute");
  // Execute: each device computes dimension-sliced partials for ALL graphs.
  // partials[o][g]: device g's contribution to origin o's layer-1 output.
  std::vector<std::vector<Tensor>> partials(
      static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
  // Saved per (g, o) for the weight-gradient pass.
  std::vector<std::vector<Tensor>> saved_agg(partials.size(),
                                             std::vector<Tensor>(partials.size()));
  std::vector<std::vector<Tensor>> saved_self(partials.size(),
                                              std::vector<Tensor>(partials.size()));
  for (DeviceId g = 0; g < c; ++g) {
    const auto [lo, hi] = DimSlice(d, c, g);
    auto& sage = dynamic_cast<SageLayer&>(ctx_->model(g).layer(0));
    const Tensor w_neigh = RowSlice(sage.w_neigh().value, lo, hi);
    const Tensor w_self = RowSlice(sage.w_self().value, lo, hi);
    // One batched dimension-slice gather per device per step.
    std::vector<NodeId> gather_nodes;
    std::vector<std::int64_t> base(static_cast<std::size_t>(c), 0);
    for (DeviceId o = 0; o < c; ++o) {
      base[static_cast<std::size_t>(o)] = static_cast<std::int64_t>(gather_nodes.size());
      const Block& b = all0[static_cast<std::size_t>(o)];
      gather_nodes.insert(gather_nodes.end(), b.src_nodes.begin(), b.src_nodes.end());
    }
    Tensor h_all(static_cast<std::int64_t>(gather_nodes.size()), hi - lo);
    if (!gather_nodes.empty()) ctx_->store->Gather(g, gather_nodes, lo, hi, h_all);
    std::int64_t transient = h_all.bytes();
    double flops = 0.0;
    for (DeviceId o = 0; o < c; ++o) {
      const Block& b = all0[static_cast<std::size_t>(o)];
      if (b.num_dst == 0) continue;
      Tensor h(b.num_src(), hi - lo);
      std::copy_n(h_all.row(base[static_cast<std::size_t>(o)]), b.num_src() * (hi - lo),
                  h.data());
      Tensor aggd(b.num_dst, hi - lo);
      SpmmMean(b.csr(), h, aggd);
      Tensor self(b.num_dst, hi - lo);
      std::copy_n(h.data(), b.num_dst * (hi - lo), self.data());
      Tensor part(b.num_dst, sage.out_dim());
      Matmul(aggd, w_neigh, part);
      Matmul(self, w_self, part, 1.0f, 1.0f);
      flops += 4.0 * static_cast<double>(b.num_dst) * (hi - lo) * sage.out_dim() +
               2.0 * static_cast<double>(b.num_edges()) * (hi - lo);
      transient += part.bytes();
      partials[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)] = std::move(part);
      saved_agg[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(aggd);
      saved_self[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(self);
    }
    ctx_->sim->ChargeCompute(g, flops);
    ctx_->sim->NoteTransient(g, transient);
  }

  stage.Next("reshuffle");
  // Reshuffle (forward): SparseAllreduce per origin's destination set.
  std::vector<Tensor> raw0(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) {
    if (all0[static_cast<std::size_t>(o)].num_dst == 0) continue;
    auto& parts = partials[static_cast<std::size_t>(o)];
    std::vector<Tensor*> ptrs;
    for (auto& t : parts) ptrs.push_back(&t);
    ctx_->comm->AllReduceSum(ptrs, Phase::kTrain);
    raw0[static_cast<std::size_t>(o)] = parts[0];  // reduced copy
  }

  stage.Next("execute");
  // Local remainder per origin + loss + backward to the layer-1 boundary.
  std::vector<Tensor> grad_raw0(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) {
    DeviceBatch& batch = batches[static_cast<std::size_t>(o)];
    if (batch.labels.empty()) continue;
    auto& sage = dynamic_cast<SageLayer&>(ctx_->model(o).layer(0));
    Tensor& r0 = raw0[static_cast<std::size_t>(o)];
    AddBiasRows(r0, sage.bias().value);  // bias applied once, post-reduce
    const auto& blocks = batch.sample.blocks;
    ModelTape tape;
    const Tensor logits = ctx_->model(o).ForwardFrom(1, blocks, r0, &tape);
    Tensor grad_logits;
    const StepStats s = SeedLossAndGrad(*ctx_, o, batch, logits, total_seeds, grad_logits);
    grad_raw0[static_cast<std::size_t>(o)] =
        ctx_->model(o).BackwardTo(1, blocks, tape, grad_logits);
    Tensor gb(1, sage.out_dim());
    BiasGradRows(grad_raw0[static_cast<std::size_t>(o)], gb);
    Axpy(1.0f, gb, sage.bias().grad);
    ChargeStepCompute(*ctx_, o, blocks, 1);
    agg.loss += s.loss;
    agg.correct += s.correct;
  }

  stage.Next("reshuffle");
  // Backward shuffle: broadcast layer-1 output gradients so every device can
  // form the gradient of its weight slice.
  std::vector<Tensor> bc_in(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) bc_in[static_cast<std::size_t>(o)] =
      grad_raw0[static_cast<std::size_t>(o)];
  const std::vector<Tensor> all_grad =
      ctx_->comm->AllBroadcastTensors(bc_in, Phase::kTrain);

  stage.Next("execute");
  for (DeviceId g = 0; g < c; ++g) {
    const auto [lo, hi] = DimSlice(d, c, g);
    auto& sage = dynamic_cast<SageLayer&>(ctx_->model(g).layer(0));
    double flops = 0.0;
    for (DeviceId o = 0; o < c; ++o) {
      const Tensor& go = all_grad[static_cast<std::size_t>(o)];
      if (go.rows() == 0) continue;
      const Tensor& aggd = saved_agg[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      const Tensor& self = saved_self[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      Tensor gw(hi - lo, sage.out_dim());
      MatmulTN(aggd, go, gw);
      AddRowSlice(sage.w_neigh().grad, lo, gw);
      MatmulTN(self, go, gw);
      AddRowSlice(sage.w_self().grad, lo, gw);
      flops += 4.0 * static_cast<double>(go.rows()) * (hi - lo) * sage.out_dim();
    }
    ctx_->sim->ChargeCompute(g, flops);
  }
  return agg;
}

StepStats NfpExecutor::StepGat(std::vector<DeviceBatch>& batches) {
  const std::int32_t c = ctx_->num_devices();
  const std::int64_t d = ctx_->feature_dim();
  std::int64_t total_seeds = 0;
  for (const auto& b : batches) total_seeds += static_cast<std::int64_t>(b.labels.size());
  StepStats agg;
  agg.num_seeds = total_seeds;

  obs::StageSpan stage("shuffle", "nfp");
  std::vector<Block> block0s;
  for (const auto& b : batches) block0s.push_back(b.sample.blocks[0]);
  const std::vector<Block> all0 = ctx_->comm->AllBroadcastObjects(
      std::move(block0s), [](const Block& b) { return b.bytes(); }, Phase::kSample);

  stage.Next("execute");
  // Partial projections z from each dimension slice, for all graphs.
  std::vector<std::vector<Tensor>> z_parts(
      static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
  std::vector<std::vector<Tensor>> saved_h(z_parts.size(),
                                           std::vector<Tensor>(z_parts.size()));
  for (DeviceId g = 0; g < c; ++g) {
    const auto [lo, hi] = DimSlice(d, c, g);
    auto& gat = dynamic_cast<GatLayer&>(ctx_->model(g).layer(0));
    const Tensor w = RowSlice(gat.w().value, lo, hi);
    // One batched dimension-slice gather per device per step.
    std::vector<NodeId> gather_nodes;
    std::vector<std::int64_t> base(static_cast<std::size_t>(c), 0);
    for (DeviceId o = 0; o < c; ++o) {
      base[static_cast<std::size_t>(o)] = static_cast<std::int64_t>(gather_nodes.size());
      const Block& b = all0[static_cast<std::size_t>(o)];
      gather_nodes.insert(gather_nodes.end(), b.src_nodes.begin(), b.src_nodes.end());
    }
    Tensor h_all(static_cast<std::int64_t>(gather_nodes.size()), hi - lo);
    if (!gather_nodes.empty()) ctx_->store->Gather(g, gather_nodes, lo, hi, h_all);
    std::int64_t transient = h_all.bytes();
    double flops = 0.0;
    for (DeviceId o = 0; o < c; ++o) {
      const Block& b = all0[static_cast<std::size_t>(o)];
      if (b.num_dst == 0) continue;
      Tensor h(b.num_src(), hi - lo);
      std::copy_n(h_all.row(base[static_cast<std::size_t>(o)]), b.num_src() * (hi - lo),
                  h.data());
      Tensor z(b.num_src(), gat.out_dim());
      Matmul(h, w, z);
      flops += 2.0 * static_cast<double>(b.num_src()) * (hi - lo) * gat.out_dim();
      transient += z.bytes();
      z_parts[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)] = std::move(z);
      saved_h[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(h);
    }
    ctx_->sim->ChargeCompute(g, flops);
    // Every device holds z for EVERY graph's full source set: the memory
    // blowup the paper observes for NFP + attention at large hidden dims.
    ctx_->sim->NoteTransient(g, transient);
  }

  stage.Next("reshuffle");
  // Allreduce partial projections per origin -> complete z everywhere.
  std::vector<Tensor> z_full(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) {
    auto& parts = z_parts[static_cast<std::size_t>(o)];
    if (all0[static_cast<std::size_t>(o)].num_dst == 0) continue;
    std::vector<Tensor*> ptrs;
    for (auto& t : parts) ptrs.push_back(&t);
    ctx_->comm->AllReduceSum(ptrs, Phase::kTrain);
    z_full[static_cast<std::size_t>(o)] = parts[0];
  }

  stage.Next("execute");
  // Attention + remainder at each origin.
  std::vector<Tensor> grad_z(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) {
    DeviceBatch& batch = batches[static_cast<std::size_t>(o)];
    if (batch.labels.empty()) continue;
    auto& gat = dynamic_cast<GatLayer&>(ctx_->model(o).layer(0));
    const Block& b = batch.sample.blocks[0];
    std::unique_ptr<GatAttentionContext> attn_ctx;
    const Tensor raw0 = gat.AttentionForward(b.csr(), b.num_dst,
                                             z_full[static_cast<std::size_t>(o)], &attn_ctx);
    const auto& blocks = batch.sample.blocks;
    ModelTape tape;
    const Tensor logits = ctx_->model(o).ForwardFrom(1, blocks, raw0, &tape);
    Tensor grad_logits;
    const StepStats s = SeedLossAndGrad(*ctx_, o, batch, logits, total_seeds, grad_logits);
    const Tensor grad_raw0 = ctx_->model(o).BackwardTo(1, blocks, tape, grad_logits);
    grad_z[static_cast<std::size_t>(o)] =
        gat.AttentionBackward(b.csr(), b.num_dst, *attn_ctx, grad_raw0);
    ChargeStepCompute(*ctx_, o, blocks, 1);
    ctx_->sim->ChargeCompute(
        o, gat.ForwardFlops(b.num_src(), b.num_dst, b.num_edges()));
    agg.loss += s.loss;
    agg.correct += s.correct;
  }

  stage.Next("reshuffle");
  // Broadcast grad_z so each device forms its weight-slice gradient.
  const std::vector<Tensor> all_grad_z =
      ctx_->comm->AllBroadcastTensors(grad_z, Phase::kTrain);
  stage.Next("execute");
  for (DeviceId g = 0; g < c; ++g) {
    const auto [lo, hi] = DimSlice(d, c, g);
    auto& gat = dynamic_cast<GatLayer&>(ctx_->model(g).layer(0));
    double flops = 0.0;
    for (DeviceId o = 0; o < c; ++o) {
      const Tensor& gz = all_grad_z[static_cast<std::size_t>(o)];
      if (gz.rows() == 0) continue;
      const Tensor& h = saved_h[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      Tensor gw(hi - lo, gat.out_dim());
      MatmulTN(h, gz, gw);
      AddRowSlice(gat.w().grad, lo, gw);
      flops += 2.0 * static_cast<double>(gz.rows()) * (hi - lo) * gat.out_dim();
    }
    ctx_->sim->ChargeCompute(g, flops);
  }
  return agg;
}

}  // namespace

std::unique_ptr<StrategyExecutor> MakeNfpExecutor(EngineCtx& ctx) {
  return std::make_unique<NfpExecutor>(ctx);
}

}  // namespace apt
