#include "engine/quantized_grad.h"

#include <algorithm>
#include <cmath>

#include "model/sage_layer.h"
#include "tensor/codec.h"

namespace apt {

namespace {

double MaxAbs(const Tensor& t) {
  double m = 0.0;
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(p[i])));
  }
  return m;
}

SageLayer& Layer0(EngineCtx& ctx, DeviceId d) {
  auto* layer = dynamic_cast<SageLayer*>(&ctx.model(d).layer(0));
  APT_CHECK(layer != nullptr) << "quantized layer-0 backward requires SAGE";
  return *layer;
}

std::vector<std::vector<double>*> Ptrs(std::vector<std::vector<double>>& v) {
  std::vector<std::vector<double>*> out;
  out.reserve(v.size());
  for (auto& e : v) out.push_back(&e);
  return out;
}

}  // namespace

bool UseQuantizedLayer0(const EngineCtx& ctx) {
  // Single-layer models have no layer-0/layer-1 boundary to round; they keep
  // the standard backward (parity stays tolerance-level, like GAT).
  return CodecIsLossy(ctx.opts.wire_codec) &&
         ctx.model_kind() == ModelKind::kSage &&
         (*ctx.models)[0]->num_layers() >= 2;
}

void QuantizedLayer0Backward(
    EngineCtx& ctx,
    const std::vector<std::vector<QuantizedBlockGrad>>& per_device) {
  const auto c = static_cast<std::size_t>(ctx.num_devices());
  APT_CHECK_EQ(per_device.size(), c);

  // 1. Grid stats. Max-reduce {max |inputs|, max |grad_out|}; sum-reduce the
  // global dst-row count. Max is order-invariant outright, and the count is
  // a small-integer sum — both collectives return the same numbers on every
  // device regardless of how rows were grouped.
  std::vector<std::vector<double>> stats(c, std::vector<double>(2, 0.0));
  std::vector<std::vector<double>> counts(c, std::vector<double>(1, 0.0));
  for (std::size_t d = 0; d < c; ++d) {
    SageLayer& layer0 = Layer0(ctx, static_cast<DeviceId>(d));
    for (const QuantizedBlockGrad& blk : per_device[d]) {
      stats[d][0] = std::max(
          stats[d][0], layer0.QuantizedInputMaxAbs(blk.num_dst, *blk.saved));
      stats[d][1] = std::max(stats[d][1], MaxAbs(*blk.grad_out));
      counts[d][0] += static_cast<double>(blk.num_dst);
    }
  }
  ctx.comm->AllReduceDoubles(Ptrs(stats), Communicator::ReduceOp::kMax,
                             Phase::kTrain);
  ctx.comm->AllReduceDoubles(Ptrs(counts), Communicator::ReduceOp::kSum,
                             Phase::kTrain);

  // Grid steps: with Mh = max input magnitude, Mg = max grad magnitude and
  // n dst rows, every per-row contribution is bounded by Mh*Mg (bias: Mg)
  // and there are n of them, so all partial sums stay below
  // Pow2Ceil(Mh)*Pow2Ceil(Mg)*Pow2Ceil(n) = grid * 2^46 — i.e. every
  // partial sum is an exact integer multiple of the grid step with fewer
  // than 53 significant bits: double addition of the rounded terms is
  // EXACT, in any order and grouping.
  const double grid_w = Pow2Ceil(stats[0][0]) * Pow2Ceil(stats[0][1]) *
                        Pow2Ceil(counts[0][0]) * std::ldexp(1.0, -46);
  const double grid_b =
      Pow2Ceil(stats[0][1]) * Pow2Ceil(counts[0][0]) * std::ldexp(1.0, -46);

  // 2. Per-device grid-rounded accumulation, 3. exact cross-device sum.
  const std::int64_t acc_size = Layer0(ctx, 0).QuantizedAccumSize();
  std::vector<std::vector<double>> acc(
      c, std::vector<double>(static_cast<std::size_t>(acc_size), 0.0));
  for (std::size_t d = 0; d < c; ++d) {
    SageLayer& layer0 = Layer0(ctx, static_cast<DeviceId>(d));
    for (const QuantizedBlockGrad& blk : per_device[d]) {
      layer0.BackwardQuantized(blk.num_dst, *blk.saved, *blk.grad_out, grid_w,
                               grid_b, acc[d]);
    }
  }
  ctx.comm->AllReduceDoubles(Ptrs(acc), Communicator::ReduceOp::kSum,
                             Phase::kTrain);

  // 4. One double->float conversion of the global totals, carried by device
  // 0 only. The float gradient allreduce that follows adds exact zeros from
  // every other replica, so all replicas end with the identical total.
  for (std::size_t d = 0; d < c; ++d) {
    SageLayer& layer0 = Layer0(ctx, static_cast<DeviceId>(d));
    const std::int64_t wn = layer0.in_dim() * layer0.out_dim();
    float* w_self = layer0.w_self().grad.data();
    float* w_neigh = layer0.w_neigh().grad.data();
    float* bias = layer0.bias().grad.data();
    const std::vector<double>& a = acc[d];
    for (std::int64_t i = 0; i < wn; ++i) {
      w_self[i] = d == 0 ? static_cast<float>(a[static_cast<std::size_t>(i)]) : 0.0f;
      w_neigh[i] =
          d == 0 ? static_cast<float>(a[static_cast<std::size_t>(wn + i)]) : 0.0f;
    }
    for (std::int64_t i = 0; i < layer0.out_dim(); ++i) {
      bias[i] =
          d == 0 ? static_cast<float>(a[static_cast<std::size_t>(2 * wn + i)]) : 0.0f;
    }
  }
}

}  // namespace apt
