// Source node parallel (GSplit-style): layer-1 is partitioned by *source*
// node. A destination node whose sampled sources live on a remote device
// gets a virtual node there; the remote device projects and partially
// aggregates its local sources' contributions and a GroupReduce merges the
// partials at the requesting device.
//
// SAGE math: mean_{u in N(d)} h_u W = sum_g [ (1/deg_d) sum_{u local to g} h_u W ],
// so partials scaled by the destination's *total* degree sum exactly to the
// GDP result. The self term W_self h_d is computed by d's owner (the device
// whose partition holds d) and folded into that device's partial.
//
// GAT path: attention needs each destination's complete source view, so the
// owners instead ship *projected source embeddings* (z rows) to the
// requesting device, which runs attention locally — the paper's "extra
// communication for attention-based models".
//
// Pipelined execution (EngineOptions::pipeline_depth > 1): the virtual-node
// all-to-all, the owners' source gathers (kLoad) and the partial GroupReduce
// ride the per-device comm stream and overlap with the projection compute of
// the neighbouring micro-batches.
#include <unordered_map>

#include "engine/exec_common.h"
#include "engine/executor.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace apt {

namespace {

/// Virtual-node batch shipped from origin o to source-owner g.
struct SnpVirtualBatch {
  std::vector<std::int64_t> dst_local;   ///< row in origin's layer-1 output
  std::vector<std::int64_t> deg_total;   ///< destination's total sampled degree
  std::vector<NodeId> self_node;         ///< kInvalidNode, or dst id if owner(d)==g
  std::vector<std::int64_t> src_indptr;  ///< per virtual node (size n+1)
  std::vector<NodeId> srcs;              ///< global source ids

  std::int64_t size() const { return static_cast<std::int64_t>(dst_local.size()); }
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(
        dst_local.size() * 8 + deg_total.size() * 8 + self_node.size() * 8 +
        src_indptr.size() * 8 + srcs.size() * 8);
  }
};

/// Node-id request batch (SNP+GAT): origin asks owner for projected rows.
struct SnpZRequest {
  std::vector<NodeId> nodes;
  std::int64_t bytes() const { return static_cast<std::int64_t>(nodes.size() * 8); }
};

class SnpExecutor final : public StrategyExecutor {
 public:
  /// `machine_local` enables the HYBRID routing the paper's conclusion
  /// proposes as future work: sources whose owner sits on ANOTHER machine
  /// are processed by the requesting device itself (GDP-style), so no
  /// hidden embedding ever crosses the inter-machine network; SNP routing
  /// applies only between devices of the same machine.
  SnpExecutor(EngineCtx& ctx, bool machine_local)
      : StrategyExecutor(ctx), machine_local_(machine_local) {}

  StepStats Step(std::vector<DeviceBatch>& batches) override {
    if (ctx_->model_kind() == ModelKind::kSage) return StepSage(batches);
    return StepGat(batches);
  }

 private:
  /// The device that processes source node u of origin o's subgraph.
  DeviceId RouteOwner(DeviceId origin, NodeId u) const {
    const auto owner = static_cast<DeviceId>(ctx_->OwnerOf(u));
    if (!machine_local_) return owner;
    const ClusterSpec& cluster = ctx_->sim->cluster();
    return cluster.MachineOf(owner) == cluster.MachineOf(origin) ? owner : origin;
  }

  StepStats StepSage(std::vector<DeviceBatch>& batches);
  StepStats StepGat(std::vector<DeviceBatch>& batches);

  bool machine_local_;
};

StepStats SnpExecutor::StepSage(std::vector<DeviceBatch>& batches) {
  const std::int32_t c = ctx_->num_devices();
  std::int64_t total_seeds = 0;
  for (const auto& b : batches) total_seeds += static_cast<std::int64_t>(b.labels.size());
  StepStats agg;
  agg.num_seeds = total_seeds;

  // ---- Permute: split each origin's layer-1 graph by source owner. -------
  obs::StageSpan stage("permute", "snp");
  std::vector<std::vector<SnpVirtualBatch>> sends(
      static_cast<std::size_t>(c), std::vector<SnpVirtualBatch>(static_cast<std::size_t>(c)));
  for (DeviceId o = 0; o < c; ++o) {
    const Block& b = batches[static_cast<std::size_t>(o)].sample.blocks[0];
    std::vector<std::vector<NodeId>> by_owner(static_cast<std::size_t>(c));
    for (std::int64_t i = 0; i < b.num_dst; ++i) {
      const std::int64_t deg = b.indptr[static_cast<std::size_t>(i) + 1] -
                               b.indptr[static_cast<std::size_t>(i)];
      for (auto& v : by_owner) v.clear();
      for (std::int64_t e = b.indptr[static_cast<std::size_t>(i)];
           e < b.indptr[static_cast<std::size_t>(i) + 1]; ++e) {
        const NodeId u = b.src_nodes[static_cast<std::size_t>(
            b.col[static_cast<std::size_t>(e)])];
        by_owner[static_cast<std::size_t>(RouteOwner(o, u))].push_back(u);
      }
      const NodeId dst_global = b.src_nodes[static_cast<std::size_t>(i)];
      const PartId self_owner = RouteOwner(o, dst_global);
      for (DeviceId g = 0; g < c; ++g) {
        const auto& srcs = by_owner[static_cast<std::size_t>(g)];
        const bool self_here = g == self_owner;
        if (srcs.empty() && !self_here) continue;
        SnpVirtualBatch& vb = sends[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)];
        if (vb.src_indptr.empty()) vb.src_indptr.push_back(0);
        vb.dst_local.push_back(i);
        vb.deg_total.push_back(deg);
        vb.self_node.push_back(self_here ? dst_global : kInvalidNode);
        vb.srcs.insert(vb.srcs.end(), srcs.begin(), srcs.end());
        vb.src_indptr.push_back(static_cast<std::int64_t>(vb.srcs.size()));
      }
    }
  }

  // ---- Shuffle: virtual-node batches to source owners. --------------------
  stage.Next("shuffle");
  // recv[g][o] = batch from origin o handled on device g.
  auto recv = ctx_->comm->AllToAllObjects(
      std::move(sends), [](const SnpVirtualBatch& v) { return v.bytes(); },
      Phase::kSample);

  // ---- Execute: partial aggregation + projection at each owner. ----------
  stage.Next("execute");
  const std::int64_t d = ctx_->feature_dim();
  std::vector<std::vector<Tensor>> partials(
      static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
  std::vector<std::vector<std::vector<std::int64_t>>> route_index(
      static_cast<std::size_t>(c),
      std::vector<std::vector<std::int64_t>>(static_cast<std::size_t>(c)));
  // Saved for the weight-gradient pass: per (g, o).
  std::vector<std::vector<Tensor>> saved_agg(partials.size(),
                                             std::vector<Tensor>(partials.size()));
  std::vector<std::vector<Tensor>> saved_self(partials.size(),
                                              std::vector<Tensor>(partials.size()));
  std::vector<std::vector<std::vector<std::int64_t>>> saved_self_rows(
      partials.size(), std::vector<std::vector<std::int64_t>>(partials.size()));
  for (DeviceId g = 0; g < c; ++g) {
    auto& sage = dynamic_cast<SageLayer&>(ctx_->model(g).layer(0));
    // One batched feature gather per device per step (DGL-style): collect
    // the per-origin unique source lists plus owned-destination self rows,
    // fetch all of them in a single store request, then slice per origin.
    struct OriginView {
      std::vector<std::int64_t> col;        ///< edge -> row in the batched gather
      std::int64_t self_base = 0;           ///< first self row in the gather
      std::vector<std::int64_t> self_rows;  ///< virtual rows with a self term
    };
    std::vector<OriginView> views(static_cast<std::size_t>(c));
    std::vector<NodeId> gather_nodes;
    for (DeviceId o = 0; o < c; ++o) {
      const SnpVirtualBatch& vb = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (vb.size() == 0) continue;
      OriginView& view = views[static_cast<std::size_t>(o)];
      std::unordered_map<NodeId, std::int64_t> local;
      local.reserve(vb.srcs.size() * 2);
      view.col.resize(vb.srcs.size());
      for (std::size_t i = 0; i < vb.srcs.size(); ++i) {
        auto [it, inserted] = local.try_emplace(
            vb.srcs[i], static_cast<std::int64_t>(gather_nodes.size()));
        if (inserted) gather_nodes.push_back(vb.srcs[i]);
        view.col[i] = it->second;
      }
      view.self_base = static_cast<std::int64_t>(gather_nodes.size());
      for (std::int64_t r = 0; r < vb.size(); ++r) {
        if (vb.self_node[static_cast<std::size_t>(r)] != kInvalidNode) {
          view.self_rows.push_back(r);
          gather_nodes.push_back(vb.self_node[static_cast<std::size_t>(r)]);
        }
      }
    }
    Tensor h_all(static_cast<std::int64_t>(gather_nodes.size()), d);
    if (!gather_nodes.empty()) ctx_->store->Gather(g, gather_nodes, 0, d, h_all);

    double flops = 0.0;
    std::int64_t transient = h_all.bytes();
    for (DeviceId o = 0; o < c; ++o) {
      const SnpVirtualBatch& vb = recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (vb.size() == 0) continue;
      OriginView& view = views[static_cast<std::size_t>(o)];
      // Partial mean: sum local sources / total degree.
      Tensor aggd(vb.size(), d);
      const CsrView local_csr{vb.src_indptr, view.col};
      SpmmSum(local_csr, h_all, aggd);
      for (std::int64_t r = 0; r < aggd.rows(); ++r) {
        const float inv = 1.0f / static_cast<float>(vb.deg_total[static_cast<std::size_t>(r)]);
        float* row = aggd.row(r);
        for (std::int64_t j = 0; j < d; ++j) row[j] *= inv;
      }
      Tensor part(vb.size(), sage.out_dim());
      Matmul(aggd, sage.w_neigh().value, part);
      // Self terms for destinations owned here.
      const auto num_self = static_cast<std::int64_t>(view.self_rows.size());
      Tensor self_h(num_self, d);
      if (num_self > 0) {
        std::copy_n(h_all.row(view.self_base), num_self * d, self_h.data());
        Tensor self_out(num_self, sage.out_dim());
        Matmul(self_h, sage.w_self().value, self_out);
        ScatterAddRows(self_out, view.self_rows, part);
      }
      flops += 2.0 * static_cast<double>(vb.srcs.size()) * d +
               2.0 * static_cast<double>(vb.size()) * d * sage.out_dim() +
               2.0 * static_cast<double>(num_self) * d * sage.out_dim();
      transient += part.bytes();
      partials[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(part);
      route_index[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] =
          std::vector<std::int64_t>(vb.dst_local.begin(), vb.dst_local.end());
      saved_agg[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(aggd);
      saved_self[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(self_h);
      saved_self_rows[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] =
          std::move(view.self_rows);
    }
    ctx_->sim->ChargeCompute(g, flops);
    ctx_->sim->NoteTransient(g, transient);
  }

  // ---- Reshuffle: GroupReduce partials at the requesting devices. --------
  stage.Next("reshuffle");
  std::vector<Tensor> raw0(static_cast<std::size_t>(c));
  std::vector<Tensor*> out_ptrs(static_cast<std::size_t>(c), nullptr);
  for (DeviceId o = 0; o < c; ++o) {
    const Block& b = batches[static_cast<std::size_t>(o)].sample.blocks[0];
    raw0[static_cast<std::size_t>(o)] =
        Tensor(b.num_dst, ctx_->model(o).layer(0).out_dim());
    out_ptrs[static_cast<std::size_t>(o)] = &raw0[static_cast<std::size_t>(o)];
  }
  ctx_->comm->GroupReduce(partials, route_index, out_ptrs, Phase::kTrain);

  // ---- Remainder of the model at each origin. -----------------------------
  stage.Next("execute");
  std::vector<Tensor> grad_raw0(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) {
    DeviceBatch& batch = batches[static_cast<std::size_t>(o)];
    if (batch.labels.empty()) continue;
    auto& sage = dynamic_cast<SageLayer&>(ctx_->model(o).layer(0));
    Tensor& r0 = raw0[static_cast<std::size_t>(o)];
    AddBiasRows(r0, sage.bias().value);
    const auto& blocks = batch.sample.blocks;
    ModelTape tape;
    const Tensor logits = ctx_->model(o).ForwardFrom(1, blocks, r0, &tape);
    Tensor grad_logits;
    const StepStats s = SeedLossAndGrad(*ctx_, o, batch, logits, total_seeds, grad_logits);
    grad_raw0[static_cast<std::size_t>(o)] =
        ctx_->model(o).BackwardTo(1, blocks, tape, grad_logits);
    Tensor gb(1, sage.out_dim());
    BiasGradRows(grad_raw0[static_cast<std::size_t>(o)], gb);
    Axpy(1.0f, gb, sage.bias().grad);
    ChargeStepCompute(*ctx_, o, blocks, 1);
    agg.loss += s.loss;
    agg.correct += s.correct;
  }

  // ---- Backward shuffle: destination grads back to partial computers. ----
  stage.Next("reshuffle");
  std::vector<std::vector<Tensor>> grad_sends(
      static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
  for (DeviceId g = 0; g < c; ++g) {
    for (DeviceId o = 0; o < c; ++o) {
      const auto& idx = route_index[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (idx.empty() || grad_raw0[static_cast<std::size_t>(o)].rows() == 0) continue;
      Tensor rows(static_cast<std::int64_t>(idx.size()),
                  grad_raw0[static_cast<std::size_t>(o)].cols());
      GatherRows(grad_raw0[static_cast<std::size_t>(o)], idx, rows);
      grad_sends[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)] = std::move(rows);
    }
  }
  auto grad_recv = ctx_->comm->AllToAllTensors(grad_sends, Phase::kTrain);

  // ---- Weight gradients at the partial computers. -------------------------
  stage.Next("execute");
  for (DeviceId g = 0; g < c; ++g) {
    auto& sage = dynamic_cast<SageLayer&>(ctx_->model(g).layer(0));
    double flops = 0.0;
    for (DeviceId o = 0; o < c; ++o) {
      const Tensor& grows = grad_recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (grows.rows() == 0) continue;
      const Tensor& aggd = saved_agg[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      MatmulTN(aggd, grows, sage.w_neigh().grad, 1.0f, 1.0f);
      const Tensor& self_h = saved_self[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      const auto& self_rows =
          saved_self_rows[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (self_h.rows() > 0) {
        Tensor gsel(self_h.rows(), grows.cols());
        GatherRows(grows, self_rows, gsel);
        MatmulTN(self_h, gsel, sage.w_self().grad, 1.0f, 1.0f);
      }
      flops += 4.0 * static_cast<double>(grows.rows()) * d * sage.out_dim();
    }
    ctx_->sim->ChargeCompute(g, flops);
  }
  return agg;
}

StepStats SnpExecutor::StepGat(std::vector<DeviceBatch>& batches) {
  const std::int32_t c = ctx_->num_devices();
  const std::int64_t d = ctx_->feature_dim();
  std::int64_t total_seeds = 0;
  for (const auto& b : batches) total_seeds += static_cast<std::int64_t>(b.labels.size());
  StepStats agg;
  agg.num_seeds = total_seeds;

  // ---- Permute: every layer-1 source node's z row is requested from its
  // owner (dedup per (origin, owner) pair). ---------------------------------
  obs::StageSpan stage("permute", "snp");
  std::vector<std::vector<SnpZRequest>> requests(
      static_cast<std::size_t>(c), std::vector<SnpZRequest>(static_cast<std::size_t>(c)));
  // For reassembly: position of each src node in the origin's z tensor.
  std::vector<std::vector<std::vector<std::int64_t>>> positions(
      static_cast<std::size_t>(c),
      std::vector<std::vector<std::int64_t>>(static_cast<std::size_t>(c)));
  for (DeviceId o = 0; o < c; ++o) {
    const Block& b = batches[static_cast<std::size_t>(o)].sample.blocks[0];
    for (std::int64_t i = 0; i < b.num_src(); ++i) {
      const NodeId v = b.src_nodes[static_cast<std::size_t>(i)];
      const auto g = static_cast<std::size_t>(RouteOwner(o, v));
      requests[static_cast<std::size_t>(o)][g].nodes.push_back(v);
      positions[static_cast<std::size_t>(o)][g].push_back(i);
    }
  }
  stage.Next("shuffle");
  auto recv_req = ctx_->comm->AllToAllObjects(
      std::move(requests), [](const SnpZRequest& r) { return r.bytes(); },
      Phase::kSample);

  // ---- Execute at owners: load features, project, ship z rows. ------------
  stage.Next("execute");
  std::vector<std::vector<Tensor>> z_sends(
      static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
  std::vector<std::vector<Tensor>> saved_h(z_sends.size(),
                                           std::vector<Tensor>(z_sends.size()));
  for (DeviceId g = 0; g < c; ++g) {
    auto& gat = dynamic_cast<GatLayer&>(ctx_->model(g).layer(0));
    // One batched gather per device per step; per-origin requests are
    // served as contiguous row ranges of the batched fetch.
    std::vector<NodeId> gather_nodes;
    std::vector<std::int64_t> base(static_cast<std::size_t>(c), 0);
    for (DeviceId o = 0; o < c; ++o) {
      base[static_cast<std::size_t>(o)] = static_cast<std::int64_t>(gather_nodes.size());
      const auto& req = recv_req[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      gather_nodes.insert(gather_nodes.end(), req.nodes.begin(), req.nodes.end());
    }
    Tensor h_all(static_cast<std::int64_t>(gather_nodes.size()), d);
    if (!gather_nodes.empty()) ctx_->store->Gather(g, gather_nodes, 0, d, h_all);

    double flops = 0.0;
    std::int64_t transient = h_all.bytes();
    for (DeviceId o = 0; o < c; ++o) {
      const auto& req = recv_req[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (req.nodes.empty()) continue;
      const auto n = static_cast<std::int64_t>(req.nodes.size());
      Tensor h(n, d);
      std::copy_n(h_all.row(base[static_cast<std::size_t>(o)]), n * d, h.data());
      Tensor z = gat.Project(h);
      flops += 2.0 * static_cast<double>(n) * d * gat.out_dim();
      transient += h.bytes() + z.bytes();
      z_sends[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(z);
      saved_h[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)] = std::move(h);
    }
    ctx_->sim->ChargeCompute(g, flops);
    ctx_->sim->NoteTransient(g, transient);
  }
  // Hidden-embedding shuffle (the GAT extra communication).
  stage.Next("reshuffle");
  auto z_recv = ctx_->comm->AllToAllTensors(z_sends, Phase::kTrain);

  // ---- Attention + remainder at origins. -----------------------------------
  stage.Next("execute");
  std::vector<Tensor> grad_z_full(static_cast<std::size_t>(c));
  for (DeviceId o = 0; o < c; ++o) {
    DeviceBatch& batch = batches[static_cast<std::size_t>(o)];
    if (batch.labels.empty()) continue;
    auto& gat = dynamic_cast<GatLayer&>(ctx_->model(o).layer(0));
    const Block& b = batch.sample.blocks[0];
    Tensor z(b.num_src(), gat.out_dim());
    for (DeviceId g = 0; g < c; ++g) {
      const Tensor& rows = z_recv[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)];
      if (rows.rows() == 0) continue;
      ScatterRows(rows, positions[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)], z);
    }
    std::unique_ptr<GatAttentionContext> attn_ctx;
    const Tensor raw0 = gat.AttentionForward(b.csr(), b.num_dst, z, &attn_ctx);
    const auto& blocks = batch.sample.blocks;
    ModelTape tape;
    const Tensor logits = ctx_->model(o).ForwardFrom(1, blocks, raw0, &tape);
    Tensor grad_logits;
    const StepStats s = SeedLossAndGrad(*ctx_, o, batch, logits, total_seeds, grad_logits);
    const Tensor grad_raw0 = ctx_->model(o).BackwardTo(1, blocks, tape, grad_logits);
    grad_z_full[static_cast<std::size_t>(o)] =
        gat.AttentionBackward(b.csr(), b.num_dst, *attn_ctx, grad_raw0);
    ChargeStepCompute(*ctx_, o, blocks, 1);
    ctx_->sim->ChargeCompute(
        o, gat.ForwardFlops(b.num_src(), b.num_dst, b.num_edges()));
    agg.loss += s.loss;
    agg.correct += s.correct;
  }

  // ---- Backward: grad_z rows return to the owners. -------------------------
  stage.Next("reshuffle");
  std::vector<std::vector<Tensor>> gz_sends(
      static_cast<std::size_t>(c), std::vector<Tensor>(static_cast<std::size_t>(c)));
  for (DeviceId o = 0; o < c; ++o) {
    const Tensor& gz = grad_z_full[static_cast<std::size_t>(o)];
    if (gz.rows() == 0) continue;
    for (DeviceId g = 0; g < c; ++g) {
      const auto& pos = positions[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)];
      if (pos.empty()) continue;
      Tensor rows(static_cast<std::int64_t>(pos.size()), gz.cols());
      GatherRows(gz, pos, rows);
      gz_sends[static_cast<std::size_t>(o)][static_cast<std::size_t>(g)] = std::move(rows);
    }
  }
  auto gz_recv = ctx_->comm->AllToAllTensors(gz_sends, Phase::kTrain);
  stage.Next("execute");
  for (DeviceId g = 0; g < c; ++g) {
    auto& gat = dynamic_cast<GatLayer&>(ctx_->model(g).layer(0));
    double flops = 0.0;
    for (DeviceId o = 0; o < c; ++o) {
      const Tensor& grows = gz_recv[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      if (grows.rows() == 0) continue;
      const Tensor& h = saved_h[static_cast<std::size_t>(g)][static_cast<std::size_t>(o)];
      MatmulTN(h, grows, gat.w().grad, 1.0f, 1.0f);
      flops += 2.0 * static_cast<double>(grows.rows()) * d * gat.out_dim();
    }
    ctx_->sim->ChargeCompute(g, flops);
  }
  return agg;
}

}  // namespace

std::unique_ptr<StrategyExecutor> MakeSnpExecutor(EngineCtx& ctx) {
  return std::make_unique<SnpExecutor>(ctx, ctx.opts.hybrid_intra_machine);
}

}  // namespace apt
