// ParallelTrainer: drives one parallelization strategy end to end on the
// simulated cluster — the "Run" stage of APT's workflow.
//
// Owns the SimContext, communicator, feature store, and one model replica
// per device (PyTorch-DDP style). Each epoch: shuffle seeds, assign them to
// devices, sample, execute the strategy's step, allreduce gradients, step
// the optimizer on every replica.
#pragma once

#include <memory>
#include <vector>

#include "comm/collectives.h"
#include "engine/engine_ctx.h"
#include "engine/engine_types.h"
#include "engine/executor.h"
#include "feature/cache_policy.h"
#include "feature/feature_store.h"
#include "graph/dataset.h"
#include "model/gnn_model.h"
#include "model/optimizer.h"
#include "sampling/minibatch.h"
#include "sim/sim_context.h"

namespace apt {

struct TrainerSetup {
  ClusterSpec cluster;
  ModelConfig model;
  EngineOptions engine;
  std::vector<PartId> partition;          ///< node -> owning device
  CacheConfig cache;                      ///< from the adapter / cache policy
  std::vector<MachineId> feature_placement;  ///< node -> CPU-hosting machine
  std::uint64_t minibatch_seed = 777;
  /// Dry-run cost-model prediction of one epoch's comparable time
  /// (CostEstimate::Comparable(); filled by the adapter, 0 = no prediction).
  /// TrainEpoch compares it against the measured comparable time and
  /// publishes costmodel.* residual metrics.
  double predicted_comparable_seconds = 0.0;
};

class ParallelTrainer {
 public:
  ParallelTrainer(const Dataset& dataset, TrainerSetup setup);

  /// Trains one epoch; returns loss/accuracy plus the simulated-time
  /// breakdown for exactly this epoch (clocks are deltaed internally).
  EpochStats TrainEpoch(std::int64_t epoch);

  /// Mini-batched sampled inference accuracy with replica 0 (not timed).
  double EvaluateAccuracy(std::span<const NodeId> nodes, std::uint64_t eval_seed = 5,
                          std::int64_t batch_size = 4096);

  /// Copies parameter values from `src` into every replica. Used when a
  /// recovery layer swaps strategies mid-training: the new trainer resumes
  /// from the old trainer's learned parameters (Sgd is stateless, so params
  /// are the entire training state).
  void LoadParams(GnnModel& src);

  /// Retry/timeout counters accumulated across all epochs so far.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  SimContext& sim() { return *sim_; }
  GnnModel& model0() { return *models_[0]; }
  const TrainerSetup& setup() const { return setup_; }
  std::int64_t StepsPerEpoch() const { return plan_->StepsPerEpoch(); }

 private:
  const Dataset* dataset_;
  TrainerSetup setup_;
  std::unique_ptr<SimContext> sim_;
  std::unique_ptr<Communicator> comm_;
  std::unique_ptr<FeatureStore> store_;
  std::vector<std::unique_ptr<GnnModel>> models_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
  std::unique_ptr<MinibatchPlan> plan_;
  EngineCtx ctx_;
  std::unique_ptr<StrategyExecutor> executor_;
  RecoveryStats recovery_stats_;
};

}  // namespace apt
