// Shared types for the unified execution engine.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "sampling/block.h"
#include "sim/scale.h"
#include "tensor/codec.h"

namespace apt {

/// How a global step's seed nodes are assigned to devices.
enum class SeedAssignment {
  kChunked,    ///< contiguous per-device chunks (GDP / NFP default)
  kPartition,  ///< each device takes the seeds in its graph partition
               ///< (SNP / DNP default, paper §3.2 cache-locality rule)
};

/// Recovery policy for injected (or real) collective faults; consumed by
/// ParallelTrainer::TrainEpoch. Disabled by default: without it a
/// CollectiveError propagates out of TrainEpoch unchanged.
struct RecoveryOptions {
  bool retry_collectives = false;  ///< retry a step whose collective failed
  int max_retries_per_step = 3;    ///< give up (rethrow) after this many
  /// Simulated backoff before attempt k: backoff_base_s * 2^(k-1). Charged
  /// to every device's clock (kTrain) so retries show up in epoch time.
  double backoff_base_s = 0.05;
  /// If > 0: steps whose simulated duration exceeds this are counted as
  /// timeouts (fault.step_timeouts) — the re-planning layer's signal that
  /// the current strategy has degraded. Detection only; never aborts.
  double step_timeout_s = 0.0;
};

/// Cumulative recovery counters for one trainer (never reset).
struct RecoveryStats {
  std::int64_t collective_failures = 0;  ///< CollectiveErrors caught
  std::int64_t retries = 0;              ///< steps re-attempted
  std::int64_t giveups = 0;              ///< retry budget exhausted (rethrown)
  std::int64_t step_timeouts = 0;        ///< steps over step_timeout_s
};

struct EngineOptions {
  Strategy strategy = Strategy::kGDP;
  std::vector<int> fanouts = {10, 10, 10};
  std::int64_t batch_size_per_device = 1024;
  std::int64_t cache_bytes_per_device = 4LL << 30;
  SeedAssignment seed_assignment = SeedAssignment::kPartition;
  std::uint64_t sample_seed = 99;
  float learning_rate = 0.05f;
  /// Prototype of the paper's future-work HYBRID strategy (§5.2, §7): with
  /// strategy == kSNP, restrict source-node routing to devices of the SAME
  /// machine; sources owned by other machines are processed at the
  /// requesting device (GDP-style), so hidden embeddings never cross the
  /// inter-machine network. See bench/ablation_hybrid.
  bool hybrid_intra_machine = false;
  /// Pipelined execution: split every step into this many micro-batches and
  /// overlap their Shuffle/gather communication with compute on a per-device
  /// comm stream (SimContext::PipelinedStepScope). 1 = serial (today's
  /// behaviour). Purely a timing-model feature: model parameters are
  /// bit-identical at every depth (the arithmetic still runs serially).
  int pipeline_depth = 1;
  RecoveryOptions recovery;
  /// Wire codec for float-tensor collective payloads (shuffle/gather
  /// transfers), applied per TrafficClass by the Communicator: transfers
  /// charge compressed bytes, and lossy codecs round the boundary tensors in
  /// a fixed canonical order (DESIGN.md invariant 8) so quantized-GDP and
  /// quantized-DNP stay bit-identical to each other.
  Codec wire_codec = Codec::kIdentity;
  /// Storage codec for the FeatureStore: features live compressed at rest
  /// and in every cache tier (quantize-on-gather at the storage tier,
  /// dequantize at the consumer), shrinking load wire bytes and letting more
  /// rows fit in the same cache budget.
  Codec storage_codec = Codec::kIdentity;
  /// Codec for the gradient allreduce wire bytes. kDeltaBitmask is lossless
  /// (bitmap + packed nonzeros); lossy codecs here change BYTES only, never
  /// gradient values (documented modeling deviation, DESIGN.md).
  Codec grad_codec = Codec::kIdentity;
  /// Simulator options (scale mode). With scale_mode == kScale the trainer
  /// executes one step in every `scale_sample_period` for real (a PROBE —
  /// bit-identical to the same step of an unsampled run, because each step
  /// forks its own rng stream) and fast-forwards the rest by replaying the
  /// probe's recorded step tape through the virtual clocks. Loss/accuracy
  /// of fast-forwarded steps are extrapolated from the probe (flagged in
  /// EpochStats::steps_fast_forwarded and the aptperf report).
  SimOptions sim;
  /// Scale mode: execute 1 step in N for real; >= 1 (1 = probe every step,
  /// which must be bit-identical to scale_mode off).
  std::int64_t scale_sample_period = 8;
  /// If > 0: cap the number of steps per epoch (scale sweeps run a fixed
  /// step budget instead of the full multi-thousand-step epoch).
  std::int64_t max_steps_per_epoch = 0;
  /// Width of the online telemetry windows (obs/telemetry.h) the trainer
  /// records step / per-stage / per-device-busy series into, in SIMULATED
  /// seconds. <= 0 disables trainer telemetry. Telemetry never advances the
  /// virtual clocks: simulated results are bit-identical either way (the
  /// overhead bench gates this at exactly zero).
  double telemetry_window_s = 1e-3;

  /// Default assignment rule for a strategy (tests may override to compare
  /// strategies on identical mini-batches).
  static SeedAssignment DefaultAssignment(Strategy s) {
    return (s == Strategy::kSNP || s == Strategy::kDNP) ? SeedAssignment::kPartition
                                                        : SeedAssignment::kChunked;
  }
};

/// Per-device work for one global step.
struct DeviceBatch {
  SampledBatch sample;
  std::vector<std::int64_t> labels;  ///< one per seed
};

/// Result of one global step.
struct StepStats {
  double loss = 0.0;           ///< seed-weighted mean loss
  std::int64_t correct = 0;    ///< argmax hits over all seeds
  std::int64_t num_seeds = 0;
};

/// Result of one epoch (simulated seconds come from SimContext phases).
struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double sim_seconds = 0.0;    ///< stacked sum of the three phase maxima
  double wall_seconds = 0.0;   ///< true simulated wall clock (max device
                               ///< clock delta); <= sim_seconds because the
                               ///< stacked sum double-counts barrier waits
  double sample_seconds = 0.0; ///< incl. sampled-subgraph shuffles
  double load_seconds = 0.0;
  double train_seconds = 0.0;  ///< incl. hidden-embedding shuffles
  /// Collective busy + barrier-wait time (SimContext::CommMax deltas) inside
  /// the sample / train phases: the measured counterparts of the cost
  /// model's graph-shuffle and T_shuffle terms.
  double comm_sample_seconds = 0.0;
  double comm_train_seconds = 0.0;
  /// Scale mode: how many of this epoch's steps ran for real (probes) vs
  /// were fast-forwarded from a probe's step tape. steps_fast_forwarded > 0
  /// marks loss/accuracy as EXTRAPOLATED (timing stays exact-model: every
  /// fast-forwarded step re-runs the charging math on the virtual clocks).
  std::int64_t steps_executed = 0;
  std::int64_t steps_fast_forwarded = 0;
};

}  // namespace apt
