// Helpers shared by all strategy executors.
#pragma once

#include <vector>

#include "engine/engine_ctx.h"

namespace apt {

/// Splits a global step's seeds across devices per the assignment policy.
std::vector<std::vector<NodeId>> AssignSeeds(const EngineCtx& ctx,
                                             std::span<const NodeId> step_seeds);

/// Samples each device's blocks (charging simulated sampling time) and looks
/// up seed labels. rng streams are forked per device for determinism.
std::vector<DeviceBatch> SampleDeviceBatches(
    EngineCtx& ctx, const std::vector<std::vector<NodeId>>& seeds_per_device,
    Rng& step_rng);

/// Per-device softmax cross-entropy on seed logits. Scales the gradient by
/// (device seeds / total seeds) so the later *sum* allreduce yields the
/// global-mean gradient regardless of per-device batch imbalance.
StepStats SeedLossAndGrad(EngineCtx& ctx, DeviceId dev, const DeviceBatch& batch,
                          const Tensor& logits, std::int64_t total_seeds,
                          Tensor& grad_logits);

/// DDP gradient synchronization: packs every replica's grads into one flat
/// tensor, ring-allreduces, unpacks. Charged to kTrain.
void AllReduceGradients(EngineCtx& ctx);

/// Charges simulated compute time for a full local forward+backward over a
/// device's block stack (used by layers the strategy does not distribute).
void ChargeStepCompute(EngineCtx& ctx, DeviceId dev, std::span<const Block> blocks,
                       int first_layer);

/// Simulated cost of sampling `batch` on `dev` (UVA edge traversals).
double SampleSeconds(const EngineCtx& ctx, DeviceId dev, const SampledBatch& batch);

/// Size of the per-seed expansion multiset tree of `batch` (the number of
/// UVA topology reads sampling performs; see the definition in the .cpp).
double SampleTreeEdges(const SampledBatch& batch);

}  // namespace apt
