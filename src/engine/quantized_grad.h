// Canonical quantized layer-0 parameter gradients.
//
// With a lossy wire codec the strategy-equivalence guarantee changes from
// "equal up to float32 reassociation" to "quantized-GDP and quantized-DNP
// are BIT-identical to each other": both strategies consume the exact same
// rounded boundary tensors (FeatureStore + GnnModel boundary hooks), and the
// only remaining order-dependent reduction — the layer-0 parameter-gradient
// sum over dst rows, which GDP groups by origin device and DNP by owner —
// is replaced by the grid-rounded double accumulation below, which is exact
// under any regrouping (DESIGN.md invariant 8).
#pragma once

#include <vector>

#include "engine/engine_ctx.h"
#include "model/gnn_layer.h"

namespace apt {

/// True when the engine must run the canonical quantized layer-0 backward:
/// a lossy wire codec and a SAGE model (GAT keeps the standard float
/// backward; its parity stays tolerance-level).
bool UseQuantizedLayer0(const EngineCtx& ctx);

/// One block a device executed layer 0 on (GDP: one per device; DNP owners:
/// one per origin device). All pointers must outlive the call.
struct QuantizedBlockGrad {
  std::int64_t num_dst = 0;
  const LayerContext* saved = nullptr;  ///< layer 0's forward context
  const Tensor* grad_out = nullptr;     ///< rounded grad at layer 0's output
};

/// Runs the canonical sequence over all devices' layer-0 blocks:
///  1. global grid stats (max |inputs|, max |grad_out|, dst-row count) via
///     order-invariant double collectives,
///  2. per-block grid-rounded double accumulation of parameter-grad
///     contributions (SageLayer::BackwardQuantized),
///  3. exact double sum across devices,
///  4. ONE double->float conversion, written into device 0's layer-0 grads
///     with zeros on every other replica — the unchanged float gradient
///     allreduce then reproduces the exact total everywhere (x + 0 + ...).
/// Devices with no blocks contribute empty stats/accumulators but still
/// participate in the collectives.
void QuantizedLayer0Backward(
    EngineCtx& ctx,
    const std::vector<std::vector<QuantizedBlockGrad>>& per_device);

}  // namespace apt
