#include "engine/trainer.h"

#include <algorithm>
#include <cmath>

#include "engine/exec_common.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/ops.h"

namespace apt {

namespace {

/// Telemetry series the trainer feeds, resolved once per epoch (handles are
/// stable; the lookup mutex stays off the step path). Null when disabled.
struct StepTelemetry {
  obs::TimeSeries* epoch = nullptr;     ///< epoch wall duration
  obs::TimeSeries* step = nullptr;      ///< step wall duration
  obs::TimeSeries* sample = nullptr;    ///< per-step sample-phase delta
  obs::TimeSeries* gather = nullptr;    ///< per-step load-phase delta
  obs::TimeSeries* shuffle = nullptr;   ///< sample-phase comm delta
  obs::TimeSeries* compute = nullptr;   ///< train-phase non-comm delta
  obs::TimeSeries* sync = nullptr;      ///< train-phase comm delta
  obs::TimeSeries* dev_busy = nullptr;  ///< per-device non-comm busy delta

  static StepTelemetry Resolve(double window_s) {
    StepTelemetry t;
    if (window_s <= 0.0 || !obs::Telemetry::Enabled()) return t;
    auto& reg = obs::Telemetry::Global();
    t.epoch = &reg.series("train.epoch.s", window_s);
    t.step = &reg.series("train.step.s", window_s);
    t.sample = &reg.series("train.stage.sample.s", window_s);
    t.gather = &reg.series("train.stage.gather.s", window_s);
    t.shuffle = &reg.series("train.stage.shuffle.s", window_s);
    t.compute = &reg.series("train.stage.compute.s", window_s);
    t.sync = &reg.series("train.stage.sync.s", window_s);
    t.dev_busy = &reg.series("train.device.busy_s", window_s);
    return t;
  }

  bool on() const { return step != nullptr; }
};

/// Sum over phases of this device's non-communication busy time: the
/// quantity whose cross-device skew exposes a straggler (barrier waits
/// equalize the raw clocks, comm time hides in the wait accounting — pure
/// compute/sampling busy time does neither).
double DeviceBusy(const SimContext& sim, DeviceId dev) {
  double busy = 0.0;
  for (int p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    busy += sim.PhaseOf(dev, phase) - sim.CommOf(dev, phase);
  }
  return busy;
}

/// Comparable time so far (phase maxima, same convention as
/// CostEstimate::Comparable): sample + load + train-phase communication.
/// In pipelined mode load/shuffle time is overlapped and only its exposed
/// share lands on the phases, so the measured counterpart of the planner's
/// overlap-aware estimate is the stacked phase total.
double ComparableNow(const SimContext& sim, int pipeline_depth) {
  if (pipeline_depth > 1) {
    return sim.PhaseMax(Phase::kSample) + sim.PhaseMax(Phase::kLoad) +
           sim.PhaseMax(Phase::kTrain);
  }
  return sim.PhaseMax(Phase::kSample) + sim.PhaseMax(Phase::kLoad) +
         sim.CommMax(Phase::kTrain);
}

}  // namespace

ParallelTrainer::ParallelTrainer(const Dataset& dataset, TrainerSetup setup)
    : dataset_(&dataset), setup_(std::move(setup)) {
  APT_CHECK_EQ(static_cast<NodeId>(setup_.partition.size()), dataset.graph.num_nodes());
  sim_ = std::make_unique<SimContext>(setup_.cluster, setup_.engine.sim);
  comm_ = std::make_unique<Communicator>(*sim_);
  if (setup_.feature_placement.empty()) {
    setup_.feature_placement.assign(
        static_cast<std::size_t>(dataset.graph.num_nodes()), MachineId{0});
  }
  if (dataset.features.numel() == 0 && dataset.procedural_feature_dim > 0) {
    // Scale sweeps: features are generated on demand from a hash of
    // (seed, node, col) instead of materializing a num_nodes x dim matrix.
    store_ = std::make_unique<FeatureStore>(
        dataset.graph.num_nodes(), dataset.procedural_feature_dim,
        dataset.procedural_feature_seed, setup_.feature_placement, *sim_);
  } else {
    store_ = std::make_unique<FeatureStore>(dataset.features,
                                            setup_.feature_placement, *sim_);
  }
  // Codec wiring. Storage codec first (ConfigureCaches accounts the cache
  // footprint in at-rest bytes); the wire codec also becomes the model's
  // boundary codec so both halves of the canonical rounding (features at the
  // store, layer-0/1 boundary in the model) are in place before any step.
  store_->SetStorageCodec(setup_.engine.storage_codec);
  comm_->SetWireCodecAll(setup_.engine.wire_codec);
  comm_->set_grad_codec(setup_.engine.grad_codec);
  if (!setup_.cache.cache_nodes.empty()) {
    store_->ConfigureCaches(setup_.cache.cache_nodes, setup_.cache.bytes_per_cached_row);
  } else {
    store_->ConfigureCaches(
        std::vector<std::vector<NodeId>>(static_cast<std::size_t>(sim_->num_devices())),
        0);
  }

  const std::int32_t c = sim_->num_devices();
  for (std::int32_t d = 0; d < c; ++d) {
    models_.push_back(std::make_unique<GnnModel>(setup_.model));
    if (CodecIsLossy(setup_.engine.wire_codec)) {
      models_.back()->set_boundary_codec(setup_.engine.wire_codec);
    }
    optimizers_.push_back(std::make_unique<Sgd>(setup_.engine.learning_rate));
    sim_->AllocPersistent(d, models_.back()->ParamBytes() * 3);  // value+grad+opt
  }
  plan_ = std::make_unique<MinibatchPlan>(dataset.train_nodes,
                                          setup_.engine.batch_size_per_device, c,
                                          setup_.minibatch_seed);
  ctx_.sim = sim_.get();
  ctx_.comm = comm_.get();
  ctx_.store = store_.get();
  ctx_.dataset = dataset_;
  ctx_.partition = &setup_.partition;
  ctx_.models = &models_;
  ctx_.opts = setup_.engine;
  executor_ = MakeExecutor(setup_.engine.strategy, ctx_);
}

EpochStats ParallelTrainer::TrainEpoch(std::int64_t epoch) {
  APT_OBS_SCOPE("epoch", "engine",
                {{"epoch", static_cast<double>(epoch), nullptr},
                 {"strategy", 0.0, ToString(setup_.engine.strategy)}});
  const double t0 = sim_->MaxNow();
  double p0[kNumPhases];
  for (int p = 0; p < kNumPhases; ++p) {
    p0[p] = sim_->PhaseMax(static_cast<Phase>(p));
  }
  const double comm0_sample = sim_->CommMax(Phase::kSample);
  const double comm0_train = sim_->CommMax(Phase::kTrain);
  const double comparable0 = ComparableNow(*sim_, setup_.engine.pipeline_depth);

  // Seed scheduling. Chunked mode slices a globally shuffled order; the
  // partition mode gives each device its own partition-local queue
  // (DistDGL-style), so every step is balanced at batch_size per device.
  const bool partitioned =
      setup_.engine.seed_assignment == SeedAssignment::kPartition;
  const std::vector<NodeId> epoch_seeds =
      partitioned ? std::vector<NodeId>{} : plan_->EpochSeeds(epoch);
  const std::vector<std::vector<NodeId>> queues =
      partitioned ? PerDeviceEpochQueues(dataset_->train_nodes, setup_.partition,
                                         sim_->num_devices(), epoch,
                                         setup_.minibatch_seed)
                  : std::vector<std::vector<NodeId>>{};
  const std::int64_t full_steps =
      partitioned
          ? QueueStepsPerEpoch(queues, setup_.engine.batch_size_per_device)
          : plan_->StepsPerEpoch();
  const std::int64_t steps =
      setup_.engine.max_steps_per_epoch > 0
          ? std::min(full_steps, setup_.engine.max_steps_per_epoch)
          : full_steps;
  // Scale mode: execute one step in `period` for real (a probe), advance the
  // rest by replaying the probe's step tape through the clocks. Probes
  // consume SEQUENTIAL minibatch indices (sched_step below), so probe j is
  // bit-identical to step j of an unsampled run — the sampled-parity tests'
  // anchor.
  const bool scale = setup_.engine.sim.scale_mode == ScaleMode::kScale;
  const std::int64_t period = std::max<std::int64_t>(1, setup_.engine.scale_sample_period);
  StepTape tape;
  StepStats last_stats;
  std::int64_t probe_index = 0, ff_steps = 0;
  double loss = 0.0;
  std::int64_t correct = 0, seeds_done = 0;
  // Per-step cost-model residuals: the dry-run prediction is uniform over
  // steps, the measurement is this step's comparable-time delta.
  const double predicted_per_step =
      steps > 0 ? setup_.predicted_comparable_seconds / static_cast<double>(steps)
                : 0.0;
  double residual_abs_sum = 0.0, residual_abs_max = 0.0;
  // Online telemetry: windowed series on the virtual clock. Recording never
  // advances a clock, so simulated results are bit-identical with telemetry
  // on or off.
  const StepTelemetry telem =
      StepTelemetry::Resolve(setup_.engine.telemetry_window_s);
  std::vector<double> dev_busy0(
      telem.on() ? static_cast<std::size_t>(sim_->num_devices()) : 0, 0.0);
  Rng epoch_rng = Rng(setup_.engine.sample_seed).Fork(static_cast<std::uint64_t>(epoch));
  for (std::int64_t step = 0; step < steps; ++step) {
    APT_OBS_SCOPE("step", "engine", {{"step", static_cast<double>(step), nullptr}});
    const double step_comparable0 = ComparableNow(*sim_, setup_.engine.pipeline_depth);
    double s_sample0 = 0.0, s_load0 = 0.0, s_train0 = 0.0;
    double s_comm_sample0 = 0.0, s_comm_train0 = 0.0;
    if (telem.on()) {
      s_sample0 = sim_->PhaseMax(Phase::kSample);
      s_load0 = sim_->PhaseMax(Phase::kLoad);
      s_train0 = sim_->PhaseMax(Phase::kTrain);
      s_comm_sample0 = sim_->CommMax(Phase::kSample);
      s_comm_train0 = sim_->CommMax(Phase::kTrain);
      for (DeviceId d = 0; d < sim_->num_devices(); ++d) {
        dev_busy0[static_cast<std::size_t>(d)] = DeviceBusy(*sim_, d);
      }
    }
    // Fast-forwarded steps replay the probe's tape; only probes sample.
    const bool probe = !scale || tape.empty() || (step % period == 0);
    const std::int64_t sched_step = scale ? probe_index : step;
    std::vector<std::vector<NodeId>> per_device;
    if (probe) {
      if (partitioned) {
        per_device.resize(queues.size());
        for (std::size_t d = 0; d < queues.size(); ++d) {
          const auto slice = QueueStepSlice(queues[d], sched_step,
                                            setup_.engine.batch_size_per_device);
          per_device[d].assign(slice.begin(), slice.end());
        }
      } else {
        const std::vector<NodeId> step_seeds =
            plan_->StepSeeds(epoch_seeds, sched_step);
        per_device = AssignSeeds(ctx_, step_seeds);
      }
    }
    const RecoveryOptions& rec = setup_.engine.recovery;
    const double step_wall0 = sim_->MaxNow();
    StepStats s;
    // Retry loop: every attempt re-forks the SAME rng stream and re-zeroes
    // the gradients, so a retried step is bit-identical to an undisturbed
    // one — faults inflate simulated time, never the arithmetic. Parameters
    // are untouched until the optimizer below, so a mid-step failure leaves
    // no residue beyond the (re-zeroed) gradients. A fast-forwarded attempt
    // replays the tape instead; a collective fault consumed mid-replay stays
    // consumed, so the retry replays clean — same semantics as a live retry.
    for (int attempt = 0;; ++attempt) {
      try {
        if (!probe) {
          comm_->FastForwardStep(tape);
          s = last_stats;  // extrapolated from the probe (flagged below)
          break;
        }
        if (scale) sim_->BeginStepRecord();
        Rng step_rng = epoch_rng.Fork(static_cast<std::uint64_t>(sched_step));
        std::vector<DeviceBatch> batches =
            SampleDeviceBatches(ctx_, per_device, step_rng);
        for (auto& m : models_) m->ZeroGrad();
        {
          // Pipelined mode: capture this step's advances and replay them as
          // overlapped micro-batches (no-op scope at depth 1). The scope
          // replays even when a collective fault unwinds mid-step, so the
          // partial charge lands before the retry below. The gradient
          // all-reduce stays outside: it needs every micro-batch's gradients
          // and is the serial tail of the step.
          SimContext::PipelinedStepScope pipelined(*sim_,
                                                   setup_.engine.pipeline_depth);
          s = executor_->Step(batches);
        }
        AllReduceGradients(ctx_);
        break;
      } catch (const FaultError& e) {
        // A faulted probe's partial tape is useless (the replayable unit is
        // one COMPLETED step); the retry records afresh.
        if (scale && probe) sim_->AbortStepRecord();
        ++recovery_stats_.collective_failures;
        if (!rec.retry_collectives || attempt >= rec.max_retries_per_step) {
          ++recovery_stats_.giveups;
          obs::Metrics::Global().counter("retry.collective.giveups").Increment();
          // The fault is about to escape the trainer: preserve the last few
          // hundred flight events (including the failing collective's bytes
          // and class) for the post-mortem before unwinding.
          obs::Flight().Record("giveup", ToString(setup_.engine.strategy),
                               sim_->MaxNow(),
                               {{"attempts", static_cast<double>(attempt + 1), nullptr},
                                {"step", static_cast<double>(step), nullptr}});
          obs::Flight().DumpOnFault(std::string("retry budget exhausted: ") + e.what());
          throw;
        }
        ++recovery_stats_.retries;
        obs::Metrics::Global().counter("retry.collective.attempts").Increment();
        sim_->ClearBarrierPoison();
        // Every device sits out the (exponential, simulated) backoff, then
        // re-enters the step together.
        const double backoff = rec.backoff_base_s * static_cast<double>(1 << attempt);
        obs::Flight().Record("retry", "collective", sim_->MaxNow(),
                             {{"attempt", static_cast<double>(attempt + 1), nullptr},
                              {"backoff_s", backoff, nullptr}});
        for (DeviceId d = 0; d < sim_->num_devices(); ++d) {
          sim_->AdvanceLabeled(d, backoff, Phase::kTrain, "retry.backoff",
                               {{"attempt", static_cast<double>(attempt + 1), nullptr}});
        }
        sim_->BarrierAll(Phase::kTrain);
      }
    }
    if (rec.step_timeout_s > 0.0 &&
        sim_->MaxNow() - step_wall0 > rec.step_timeout_s) {
      ++recovery_stats_.step_timeouts;
      obs::Metrics::Global().counter("fault.step_timeouts").Increment();
    }
    if (probe) {
      for (std::size_t d = 0; d < models_.size(); ++d) {
        optimizers_[d]->Step(models_[d]->Params());
      }
      // Optimizer work is identical on every replica; charge a nominal cost.
      // Recorded on the tape (kCompute) while scale mode probes, so
      // fast-forwarded steps charge it too.
      for (DeviceId d = 0; d < sim_->num_devices(); ++d) {
        sim_->ChargeCompute(d, 2.0 * static_cast<double>(models_[0]->ParamBytes()) / 4);
      }
      if (scale) {
        tape = sim_->EndStepRecord();
        last_stats = s;
        ++probe_index;
      }
    } else {
      ++ff_steps;
    }
    // Simulated-domain step marker on the track's dedicated marker lane:
    // delimits the step for the trace analyzer (latency percentiles) and
    // labels the track with its strategy.
    if (obs::TracingEnabled()) {
      obs::EmitSimSpan(sim_->ObsPid(), sim_->ObsStepLane(), step_wall0,
                       sim_->MaxNow(), "step", "engine",
                       {{"step", static_cast<double>(step), nullptr},
                        {"fast_forward", probe ? 0.0 : 1.0, nullptr},
                        {"strategy", 0.0, ToString(setup_.engine.strategy)}});
    }
    obs::Flight().Record("step", ToString(setup_.engine.strategy), sim_->MaxNow(),
                         {{"step", static_cast<double>(step), nullptr},
                          {"fast_forward", probe ? 0.0 : 1.0, nullptr}});
    if (telem.on()) {
      // All of a step's samples land at the step's END time: the per-stage
      // deltas are only known once the step completes, and co-locating them
      // keeps a window's stage breakdown consistent with its step count.
      const double now = sim_->MaxNow();
      telem.step->Record(now, now - step_wall0);
      telem.sample->Record(now, sim_->PhaseMax(Phase::kSample) - s_sample0);
      telem.gather->Record(now, sim_->PhaseMax(Phase::kLoad) - s_load0);
      telem.shuffle->Record(now, sim_->CommMax(Phase::kSample) - s_comm_sample0);
      const double sync_s = sim_->CommMax(Phase::kTrain) - s_comm_train0;
      telem.sync->Record(now, sync_s);
      telem.compute->Record(now,
                            sim_->PhaseMax(Phase::kTrain) - s_train0 - sync_s);
      for (DeviceId d = 0; d < sim_->num_devices(); ++d) {
        telem.dev_busy->Record(
            now, DeviceBusy(*sim_, d) - dev_busy0[static_cast<std::size_t>(d)]);
      }
    }
    loss += s.loss;
    correct += s.correct;
    seeds_done += s.num_seeds;
    if (setup_.predicted_comparable_seconds > 0.0) {
      const double residual =
          (ComparableNow(*sim_, setup_.engine.pipeline_depth) - step_comparable0) - predicted_per_step;
      residual_abs_sum += std::abs(residual);
      residual_abs_max = std::max(residual_abs_max, std::abs(residual));
    }
  }

  EpochStats stats;
  stats.loss = steps > 0 ? loss / static_cast<double>(steps) : 0.0;
  stats.train_accuracy =
      seeds_done > 0 ? static_cast<double>(correct) / static_cast<double>(seeds_done) : 0.0;
  stats.sample_seconds = sim_->PhaseMax(Phase::kSample) - p0[0];
  stats.load_seconds = sim_->PhaseMax(Phase::kLoad) - p0[1];
  stats.train_seconds = sim_->PhaseMax(Phase::kTrain) - p0[2];
  // Epoch time is reported as the stacked sum of the slowest device's time
  // in each phase (the paper's bar-chart convention). This can exceed the
  // raw clock delta slightly when different devices bound different phases.
  stats.sim_seconds =
      stats.sample_seconds + stats.load_seconds + stats.train_seconds;
  stats.wall_seconds = sim_->MaxNow() - t0;
  stats.comm_sample_seconds = sim_->CommMax(Phase::kSample) - comm0_sample;
  stats.comm_train_seconds = sim_->CommMax(Phase::kTrain) - comm0_train;
  stats.steps_executed = steps - ff_steps;
  stats.steps_fast_forwarded = ff_steps;
  if (obs::TracingEnabled()) {
    obs::EmitSimSpan(sim_->ObsPid(), sim_->ObsStepLane(), t0, sim_->MaxNow(),
                     "epoch", "engine",
                     {{"epoch", static_cast<double>(epoch), nullptr},
                      {"strategy", 0.0, ToString(setup_.engine.strategy)}});
  }
  obs::Flight().Record("epoch", ToString(setup_.engine.strategy), sim_->MaxNow(),
                       {{"epoch", static_cast<double>(epoch), nullptr}});
  if (telem.on()) telem.epoch->Record(sim_->MaxNow(), stats.wall_seconds);

  auto& metrics = obs::Metrics::Global();
  metrics.counter("trainer.epochs").Increment();
  metrics.counter("trainer.steps").Add(steps);
  if (scale) {
    metrics.counter("trainer.steps_executed").Add(stats.steps_executed);
    metrics.counter("trainer.steps_fast_forwarded").Add(ff_steps);
  }
  if (setup_.predicted_comparable_seconds > 0.0) {
    const double measured = ComparableNow(*sim_, setup_.engine.pipeline_depth) - comparable0;
    const double predicted = setup_.predicted_comparable_seconds;
    metrics.gauge("costmodel.predicted_comparable_s").Set(predicted);
    metrics.gauge("costmodel.measured_comparable_s").Set(measured);
    metrics.gauge("costmodel.residual_s").Set(measured - predicted);
    metrics.gauge("costmodel.residual_rel").Set((measured - predicted) / predicted);
    if (steps > 0) {
      metrics.gauge("costmodel.step_residual_mean_s")
          .Set(residual_abs_sum / static_cast<double>(steps));
      metrics.gauge("costmodel.step_residual_max_s").Set(residual_abs_max);
    }
  }
  return stats;
}

void ParallelTrainer::LoadParams(GnnModel& src) {
  std::vector<Param*> from = src.Params();
  for (auto& model : models_) {
    std::vector<Param*> to = model->Params();
    APT_CHECK_EQ(to.size(), from.size()) << "LoadParams across different models";
    for (std::size_t i = 0; i < to.size(); ++i) {
      APT_CHECK(to[i]->value.SameShape(from[i]->value))
          << "LoadParams shape mismatch for " << to[i]->name;
      to[i]->value = from[i]->value;
    }
  }
}

double ParallelTrainer::EvaluateAccuracy(std::span<const NodeId> nodes,
                                         std::uint64_t eval_seed,
                                         std::int64_t batch_size) {
  if (nodes.empty()) return 0.0;
  APT_CHECK_GT(dataset_->features.numel(), 0)
      << "EvaluateAccuracy reads materialized features; procedural "
         "(scale-sweep) datasets train without an eval matrix";
  NeighborSampler sampler(dataset_->graph, setup_.engine.fanouts);
  Rng rng(eval_seed);
  std::int64_t correct = 0;
  const std::int64_t d = dataset_->feature_dim();
  for (std::size_t lo = 0; lo < nodes.size();
       lo += static_cast<std::size_t>(batch_size)) {
    const std::size_t hi = std::min(nodes.size(), lo + static_cast<std::size_t>(batch_size));
    const std::span<const NodeId> seeds = nodes.subspan(lo, hi - lo);
    SampledBatch batch = sampler.Sample(seeds, rng);
    Tensor feats(batch.blocks[0].num_src(), d);
    GatherRows(dataset_->features, batch.blocks[0].src_nodes, feats);
    const Tensor logits = models_[0]->ForwardFrom(0, batch.blocks, feats, nullptr);
    for (std::int64_t i = 0; i < logits.rows(); ++i) {
      const float* row = logits.row(i);
      std::int64_t argmax = 0;
      for (std::int64_t j = 1; j < logits.cols(); ++j) {
        if (row[j] > row[argmax]) argmax = j;
      }
      if (argmax ==
          dataset_->labels[static_cast<std::size_t>(seeds[static_cast<std::size_t>(i)])]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

}  // namespace apt
