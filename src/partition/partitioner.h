// Graph partitioning interfaces (the METIS role in the paper).
//
// SNP and DNP assign seed nodes, cached features, and layer-1 work by an
// edge-cut partition of the data graph; Fig 11 contrasts a quality
// partitioner against random assignment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/types.h"
#include "graph/csr_graph.h"

namespace apt {

/// part[v] in [0, num_parts) for every node v.
using PartitionAssignment = std::vector<PartId>;

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual PartitionAssignment Partition(const CsrGraph& graph, PartId num_parts) = 0;
  virtual std::string Name() const = 0;
};

/// Uniform random assignment (Fig 11's low-quality baseline).
class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(std::uint64_t seed = 7) : seed_(seed) {}
  PartitionAssignment Partition(const CsrGraph& graph, PartId num_parts) override;
  std::string Name() const override { return "random"; }

 private:
  std::uint64_t seed_;
};

/// Multilevel edge-cut partitioner: heavy-edge-matching coarsening, greedy
/// BFS growing for the initial partition, and boundary FM refinement during
/// uncoarsening. Plays the METIS role.
class MultilevelPartitioner final : public Partitioner {
 public:
  struct Options {
    NodeId coarsen_until = 512;     ///< stop coarsening below this many nodes
    int max_levels = 30;
    int refine_passes = 6;
    int initial_attempts = 8;  ///< randomized restarts on the coarsest graph
    double balance_tolerance = 0.05;  ///< parts may exceed ideal by this factor
    std::uint64_t seed = 13;
  };

  MultilevelPartitioner() = default;
  explicit MultilevelPartitioner(Options options) : options_(options) {}
  PartitionAssignment Partition(const CsrGraph& graph, PartId num_parts) override;
  std::string Name() const override { return "multilevel"; }

 private:
  Options options_;
};

/// Number of edges whose endpoints land in different parts.
EdgeId EdgeCut(const CsrGraph& graph, const PartitionAssignment& part);

/// max part size / ideal part size (1.0 = perfectly balanced).
double PartitionBalance(const PartitionAssignment& part, PartId num_parts);

/// Nodes of each part, in ascending node order.
std::vector<std::vector<NodeId>> PartitionMembers(const PartitionAssignment& part,
                                                  PartId num_parts);

}  // namespace apt
