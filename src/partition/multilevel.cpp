// Multilevel edge-cut partitioning (coarsen / initial partition / refine).
#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "core/logging.h"
#include "partition/partitioner.h"

namespace apt {

namespace {

/// Weighted graph used internally across coarsening levels.
struct WGraph {
  std::vector<EdgeId> indptr;
  std::vector<NodeId> adj;
  std::vector<std::int64_t> edge_w;
  std::vector<std::int64_t> node_w;
  NodeId num_nodes() const { return static_cast<NodeId>(node_w.size()); }
};

WGraph FromCsr(const CsrGraph& g) {
  WGraph w;
  w.indptr.assign(g.indptr().begin(), g.indptr().end());
  w.adj.assign(g.indices().begin(), g.indices().end());
  w.edge_w.assign(w.adj.size(), 1);
  // Unit node weights: partitions are balanced by node count, which also
  // balances per-partition training seeds (and, without extreme hubs,
  // adjacency volume). This mirrors DGL's partitioning setup, where
  // balanced train-node counts keep per-step work even across devices.
  w.node_w.assign(static_cast<std::size_t>(g.num_nodes()), 1);
  return w;
}

/// Heavy-edge matching: visit nodes in random order; match each unmatched
/// node with its unmatched neighbor of maximum edge weight.
std::vector<NodeId> HeavyEdgeMatch(const WGraph& g, Rng& rng, NodeId* num_coarse) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> match(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.Shuffle(order);
  for (NodeId v : order) {
    if (match[static_cast<std::size_t>(v)] != kInvalidNode) continue;
    NodeId best = kInvalidNode;
    std::int64_t best_w = -1;
    for (EdgeId e = g.indptr[static_cast<std::size_t>(v)];
         e < g.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const NodeId u = g.adj[static_cast<std::size_t>(e)];
      if (u == v || match[static_cast<std::size_t>(u)] != kInvalidNode) continue;
      if (g.edge_w[static_cast<std::size_t>(e)] > best_w) {
        best_w = g.edge_w[static_cast<std::size_t>(e)];
        best = u;
      }
    }
    if (best == kInvalidNode) {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }
  // Assign coarse ids.
  std::vector<NodeId> coarse_id(static_cast<std::size_t>(n), kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (coarse_id[static_cast<std::size_t>(v)] != kInvalidNode) continue;
    const NodeId m = match[static_cast<std::size_t>(v)];
    coarse_id[static_cast<std::size_t>(v)] = next;
    if (m != v) coarse_id[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  *num_coarse = next;
  return coarse_id;
}

WGraph Contract(const WGraph& g, const std::vector<NodeId>& coarse_id,
                NodeId num_coarse) {
  WGraph c;
  c.node_w.assign(static_cast<std::size_t>(num_coarse), 0);
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    c.node_w[static_cast<std::size_t>(coarse_id[static_cast<std::size_t>(v)])] +=
        g.node_w[static_cast<std::size_t>(v)];
  }
  // Aggregate multi-edges between coarse nodes.
  std::vector<std::unordered_map<NodeId, std::int64_t>> nbrs(
      static_cast<std::size_t>(num_coarse));
  for (NodeId v = 0; v < n; ++v) {
    const NodeId cv = coarse_id[static_cast<std::size_t>(v)];
    for (EdgeId e = g.indptr[static_cast<std::size_t>(v)];
         e < g.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const NodeId cu = coarse_id[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])];
      if (cu == cv) continue;
      nbrs[static_cast<std::size_t>(cv)][cu] += g.edge_w[static_cast<std::size_t>(e)];
    }
  }
  c.indptr.assign(static_cast<std::size_t>(num_coarse) + 1, 0);
  for (NodeId v = 0; v < num_coarse; ++v) {
    c.indptr[static_cast<std::size_t>(v) + 1] =
        c.indptr[static_cast<std::size_t>(v)] +
        static_cast<EdgeId>(nbrs[static_cast<std::size_t>(v)].size());
  }
  c.adj.resize(static_cast<std::size_t>(c.indptr.back()));
  c.edge_w.resize(c.adj.size());
  for (NodeId v = 0; v < num_coarse; ++v) {
    EdgeId pos = c.indptr[static_cast<std::size_t>(v)];
    for (const auto& [u, w] : nbrs[static_cast<std::size_t>(v)]) {
      c.adj[static_cast<std::size_t>(pos)] = u;
      c.edge_w[static_cast<std::size_t>(pos)] = w;
      ++pos;
    }
  }
  return c;
}

/// Greedy BFS graph-growing initial partition on the coarsest graph.
std::vector<PartId> InitialPartition(const WGraph& g, PartId k, Rng& rng) {
  const NodeId n = g.num_nodes();
  std::int64_t total_w = std::accumulate(g.node_w.begin(), g.node_w.end(), std::int64_t{0});
  const std::int64_t target = (total_w + k - 1) / k;
  std::vector<PartId> part(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.Shuffle(order);
  std::size_t cursor = 0;
  for (PartId p = 0; p < k; ++p) {
    std::int64_t grown = 0;
    std::deque<NodeId> frontier;
    while (grown < target) {
      if (frontier.empty()) {
        // Find an unassigned seed.
        while (cursor < order.size() && part[static_cast<std::size_t>(order[cursor])] != -1) {
          ++cursor;
        }
        if (cursor >= order.size()) break;
        frontier.push_back(order[cursor]);
      }
      const NodeId v = frontier.front();
      frontier.pop_front();
      if (part[static_cast<std::size_t>(v)] != -1) continue;
      part[static_cast<std::size_t>(v)] = p;
      grown += g.node_w[static_cast<std::size_t>(v)];
      for (EdgeId e = g.indptr[static_cast<std::size_t>(v)];
           e < g.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
        const NodeId u = g.adj[static_cast<std::size_t>(e)];
        if (part[static_cast<std::size_t>(u)] == -1) frontier.push_back(u);
      }
    }
  }
  // Any leftovers go to the lightest part.
  std::vector<std::int64_t> loads(static_cast<std::size_t>(k), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] >= 0) {
      loads[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
          g.node_w[static_cast<std::size_t>(v)];
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      const auto it = std::min_element(loads.begin(), loads.end());
      const PartId p = static_cast<PartId>(it - loads.begin());
      part[static_cast<std::size_t>(v)] = p;
      loads[static_cast<std::size_t>(p)] += g.node_w[static_cast<std::size_t>(v)];
    }
  }
  return part;
}

/// One boundary-refinement pass: move nodes to the neighboring part with the
/// largest cut gain, subject to the balance constraint. Returns total gain.
std::int64_t RefinePass(const WGraph& g, std::vector<PartId>& part, PartId k,
                        double tolerance) {
  const NodeId n = g.num_nodes();
  std::vector<std::int64_t> loads(static_cast<std::size_t>(k), 0);
  std::int64_t total_w = 0;
  for (NodeId v = 0; v < n; ++v) {
    loads[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.node_w[static_cast<std::size_t>(v)];
    total_w += g.node_w[static_cast<std::size_t>(v)];
  }
  const auto max_load =
      static_cast<std::int64_t>((1.0 + tolerance) * total_w / k) + 1;
  std::int64_t total_gain = 0;
  std::vector<std::int64_t> conn(static_cast<std::size_t>(k), 0);
  for (NodeId v = 0; v < n; ++v) {
    const PartId pv = part[static_cast<std::size_t>(v)];
    // Connectivity of v to each part.
    std::fill(conn.begin(), conn.end(), 0);
    bool boundary = false;
    for (EdgeId e = g.indptr[static_cast<std::size_t>(v)];
         e < g.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
      const PartId pu = part[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])];
      conn[static_cast<std::size_t>(pu)] += g.edge_w[static_cast<std::size_t>(e)];
      if (pu != pv) boundary = true;
    }
    if (!boundary) continue;
    PartId best = pv;
    std::int64_t best_gain = 0;
    for (PartId p = 0; p < k; ++p) {
      if (p == pv) continue;
      const std::int64_t gain =
          conn[static_cast<std::size_t>(p)] - conn[static_cast<std::size_t>(pv)];
      if (gain > best_gain &&
          loads[static_cast<std::size_t>(p)] + g.node_w[static_cast<std::size_t>(v)] <=
              max_load) {
        best_gain = gain;
        best = p;
      }
    }
    if (best != pv) {
      loads[static_cast<std::size_t>(pv)] -= g.node_w[static_cast<std::size_t>(v)];
      loads[static_cast<std::size_t>(best)] += g.node_w[static_cast<std::size_t>(v)];
      part[static_cast<std::size_t>(v)] = best;
      total_gain += best_gain;
    }
  }
  return total_gain;
}

}  // namespace

PartitionAssignment RandomPartitioner::Partition(const CsrGraph& graph,
                                                 PartId num_parts) {
  APT_CHECK_GT(num_parts, 0);
  Rng rng(seed_);
  PartitionAssignment part(static_cast<std::size_t>(graph.num_nodes()));
  for (auto& p : part) {
    p = static_cast<PartId>(rng.NextBelow(static_cast<std::uint64_t>(num_parts)));
  }
  return part;
}

PartitionAssignment MultilevelPartitioner::Partition(const CsrGraph& graph,
                                                     PartId num_parts) {
  APT_CHECK_GT(num_parts, 0);
  const NodeId n = graph.num_nodes();
  if (num_parts == 1) return PartitionAssignment(static_cast<std::size_t>(n), 0);

  Rng rng(options_.seed);
  // Coarsening phase.
  std::vector<WGraph> levels;
  std::vector<std::vector<NodeId>> maps;  // fine node -> coarse node
  levels.push_back(FromCsr(graph));
  while (levels.back().num_nodes() > std::max<NodeId>(options_.coarsen_until,
                                                      4 * num_parts) &&
         static_cast<int>(levels.size()) < options_.max_levels) {
    NodeId num_coarse = 0;
    auto cid = HeavyEdgeMatch(levels.back(), rng, &num_coarse);
    // Matching degenerated (e.g. star graphs): stop if shrinkage is too weak.
    if (num_coarse > levels.back().num_nodes() * 9 / 10) break;
    levels.push_back(Contract(levels.back(), cid, num_coarse));
    maps.push_back(std::move(cid));
  }

  // Initial partition on the coarsest level: multiple randomized BFS-growing
  // attempts, each FM-refined; keep the best cut. The coarsest graph is tiny,
  // so restarts are cheap and buy a much better starting point.
  auto cut_of = [](const WGraph& g, const std::vector<PartId>& p) {
    std::int64_t cut = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (EdgeId e = g.indptr[static_cast<std::size_t>(v)];
           e < g.indptr[static_cast<std::size_t>(v) + 1]; ++e) {
        if (p[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])] !=
            p[static_cast<std::size_t>(v)]) {
          cut += g.edge_w[static_cast<std::size_t>(e)];
        }
      }
    }
    return cut;
  };
  std::vector<PartId> part;
  std::int64_t best_cut = 0;
  for (int attempt = 0; attempt < options_.initial_attempts; ++attempt) {
    std::vector<PartId> candidate = InitialPartition(levels.back(), num_parts, rng);
    for (int pass = 0; pass < 2 * options_.refine_passes; ++pass) {
      if (RefinePass(levels.back(), candidate, num_parts,
                     options_.balance_tolerance) == 0) {
        break;
      }
    }
    const std::int64_t cut = cut_of(levels.back(), candidate);
    if (attempt == 0 || cut < best_cut) {
      best_cut = cut;
      part = std::move(candidate);
    }
  }

  // Uncoarsen: project and refine at each level.
  for (std::size_t lvl = maps.size(); lvl-- > 0;) {
    const auto& cid = maps[lvl];
    std::vector<PartId> fine_part(cid.size());
    for (std::size_t v = 0; v < cid.size(); ++v) {
      fine_part[v] = part[static_cast<std::size_t>(cid[v])];
    }
    part = std::move(fine_part);
    for (int pass = 0; pass < options_.refine_passes; ++pass) {
      if (RefinePass(levels[lvl], part, num_parts, options_.balance_tolerance) == 0) break;
    }
  }
  return part;
}

EdgeId EdgeCut(const CsrGraph& graph, const PartitionAssignment& part) {
  APT_CHECK_EQ(static_cast<NodeId>(part.size()), graph.num_nodes());
  EdgeId cut = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId u : graph.Neighbors(v)) {
      if (part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(v)]) ++cut;
    }
  }
  return cut / 2;  // undirected graphs store both directions
}

double PartitionBalance(const PartitionAssignment& part, PartId num_parts) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_parts), 0);
  for (PartId p : part) {
    APT_CHECK(p >= 0 && p < num_parts);
    ++sizes[static_cast<std::size_t>(p)];
  }
  const double ideal = static_cast<double>(part.size()) / num_parts;
  const auto max_size = *std::max_element(sizes.begin(), sizes.end());
  return ideal > 0 ? static_cast<double>(max_size) / ideal : 0.0;
}

std::vector<std::vector<NodeId>> PartitionMembers(const PartitionAssignment& part,
                                                  PartId num_parts) {
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(num_parts));
  for (std::size_t v = 0; v < part.size(); ++v) {
    members[static_cast<std::size_t>(part[v])].push_back(static_cast<NodeId>(v));
  }
  return members;
}

}  // namespace apt
