// aptperf: command-line front end for the apt::obs trace analysis engine.
//
//   aptperf report <trace.json> [--all] [--csv]
//       Per-strategy stage breakdown, communication attribution, critical
//       path, and step percentiles of an exported trace.
//
//   aptperf diff <trace_a.json> <trace_b.json> [--strategy NAME]
//              [--threshold 0.05]
//       Markdown stage-level deltas between two traces (first marked track
//       of each by default). Exit 0 always — diffing is informational.
//
//   aptperf gate --baseline BENCH_a.json --current BENCH_b.json
//              [--tolerance 0.25] [--wall-tolerance 0.25] [--no-wall]
//       Perf-regression gate over bench records files. Exit 0 when every
//       shared metric is within tolerance, 1 on any regression, 2 on usage
//       or IO errors. This is what CI runs against the committed baseline.
//
//   aptperf merge --out OUT.json IN1.json IN2.json ...
//       Concatenates the records of several bench files into one document
//       (how BENCH_baseline.json is produced from the micro benches).
//
//   aptperf flight <flight.json>
//       Pretty-prints a fault flight recording (most recent events last).
//
//   aptperf timeline <timeline.jsonl> [--series NAME]
//       Renders a windowed telemetry timeline export (obs/telemetry.h
//       WriteTimelineJsonl): per series, one row per closed window with
//       count / mean / p50 / p95 / p99 / min / max.
//
//   aptperf slo <timeline.jsonl> --rule "SERIES STAT CMP BOUND[unit]" ...
//       Evaluates declarative SLO rules (obs/slo.h textual form) offline
//       against an exported timeline. Exit 0 when every rule holds over
//       every qualifying window, 1 on any violation, 2 on usage/IO errors.
//       This is the CI hook that holds serve_openloop to its latency SLO.
//
// All readers enforce the apt::obs schema header: files without a
// schema_version, or with one newer than this build understands, are
// rejected with a clear error instead of silently mis-parsed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/json.h"
#include "obs/slo.h"

namespace {

using apt::obs::GateOptions;
using apt::obs::GateReport;
using apt::obs::JsonValue;
using apt::obs::TraceAnalysis;
using apt::obs::TraceSet;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  aptperf report <trace.json> [--all] [--csv]\n"
               "  aptperf diff <trace_a.json> <trace_b.json> [--strategy NAME] "
               "[--threshold REL]\n"
               "  aptperf gate --baseline FILE --current FILE [--current FILE ...]\n"
               "               [--tolerance REL] [--wall-tolerance REL] [--no-wall]\n"
               "  aptperf merge --out FILE <records.json> [<records.json> ...]\n"
               "  aptperf flight <flight.json>\n"
               "  aptperf timeline <timeline.jsonl> [--series NAME]\n"
               "  aptperf slo <timeline.jsonl> --rule \"SERIES STAT CMP "
               "BOUND[unit]\" [--rule ...]\n");
  return 2;
}

bool TakeValueFlag(const std::vector<std::string>& args, std::size_t* i,
                   const char* flag, std::string* out) {
  // Accept both `--flag VALUE` and `--flag=VALUE` (the bench binaries use
  // the latter, so either muscle memory works here).
  const std::string& arg = args[*i];
  const std::size_t flag_len = std::string(flag).size();
  if (arg.size() > flag_len && arg.compare(0, flag_len, flag) == 0 &&
      arg[flag_len] == '=') {
    *out = arg.substr(flag_len + 1);
    return true;
  }
  if (arg != flag) return false;
  if (*i + 1 >= args.size()) {
    std::fprintf(stderr, "aptperf: %s needs a value\n", flag);
    std::exit(2);
  }
  *out = args[++*i];
  return true;
}

/// Picks the track to diff: --strategy match, else the first marked track,
/// else the first track.
const TraceAnalysis* PickTrack(const TraceSet& set, const std::string& strategy,
                               const char* which) {
  if (!strategy.empty()) {
    const TraceAnalysis* a = set.ByStrategy(strategy);
    if (a == nullptr) {
      std::fprintf(stderr, "aptperf: %s trace has no track with strategy %s\n",
                   which, strategy.c_str());
    }
    return a;
  }
  const auto marked = set.MarkedTracks();
  if (!marked.empty()) return marked.front();
  if (!set.tracks.empty()) return &set.tracks.front();
  std::fprintf(stderr, "aptperf: %s trace has no simulated tracks\n", which);
  return nullptr;
}

/// Machine-readable flavor of `report` (one row per track metric), for
/// spreadsheet / plotting pipelines.
void WriteCsv(std::ostream& os, const TraceSet& set, bool all_tracks) {
  os << "pid,strategy,label,metric,seconds\n";
  const auto marked = set.MarkedTracks();
  const bool filter = !all_tracks && !marked.empty();
  for (const TraceAnalysis& a : set.tracks) {
    if (filter && a.strategy.empty() && a.steps.count == 0 && !a.serve.Any()) {
      continue;
    }
    const auto row = [&](const std::string& metric, double v) {
      os << a.pid << "," << a.strategy << "," << a.track_label << "," << metric
         << "," << v << "\n";
    };
    row("wall_s", a.wall_s);
    row("stacked_s", a.StackedSeconds());
    row("comparable_s", a.ComparableSeconds());
    for (const auto& [cat, v] : a.phase_max_s) row("phase/" + cat, v);
    for (const auto& [cat, v] : a.comm_max_s) row("comm/" + cat, v);
    for (const auto& [key, sum] : a.by_name) row("stage/" + key, sum.max_lane_s);
    for (const auto& [name, v] : a.critical_by_name_s) row("critical/" + name, v);
    // Byte counters, not seconds: logical traffic per class plus the
    // "<class>.wire" keys holding post-codec compressed bytes.
    for (const auto& [cls, bytes] : a.traffic_bytes) {
      row("traffic/" + cls, static_cast<double>(bytes));
    }
    if (a.steps.count > 0) {
      row("steps/p50_s", a.steps.p50_s);
      row("steps/p95_s", a.steps.p95_s);
      row("steps/p99_s", a.steps.p99_s);
      // Count, not seconds: > 0 marks the track's model-quality metrics as
      // extrapolated from probe steps (scale mode).
      row("steps/fast_forwarded", static_cast<double>(a.steps_fast_forwarded));
    }
    if (a.serve.Any()) {
      row("serve/latency_p50_s", a.serve.latency.p50_s);
      row("serve/latency_p95_s", a.serve.latency.p95_s);
      row("serve/latency_p99_s", a.serve.latency.p99_s);
      // Counts and occupancy, not seconds (same caveat as traffic bytes).
      row("serve/requests", static_cast<double>(a.serve.latency.count));
      row("serve/shed", static_cast<double>(a.serve.shed));
      row("serve/batches", static_cast<double>(a.serve.batches));
      row("serve/mean_batch_rows", a.serve.mean_batch_rows);
    }
  }
}

int CmdReport(const std::vector<std::string>& args) {
  std::string path;
  bool all = false, csv = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--all") {
      all = true;
    } else if (args[i] == "--csv") {
      csv = true;
    } else if (path.empty()) {
      path = args[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();
  TraceSet set;
  std::string error;
  if (!apt::obs::AnalyzeTraceFile(path, &set, &error)) {
    std::fprintf(stderr, "aptperf: %s\n", error.c_str());
    return 2;
  }
  if (csv) {
    WriteCsv(std::cout, set, all);
  } else {
    apt::obs::WriteReport(std::cout, set, all);
  }
  return 0;
}

int CmdDiff(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  std::string strategy;
  double threshold = 0.05;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (TakeValueFlag(args, &i, "--strategy", &strategy)) continue;
    if (TakeValueFlag(args, &i, "--threshold", &value)) {
      threshold = std::stod(value);
      continue;
    }
    paths.push_back(args[i]);
  }
  if (paths.size() != 2) return Usage();
  TraceSet sets[2];
  for (int s = 0; s < 2; ++s) {
    std::string error;
    if (!apt::obs::AnalyzeTraceFile(paths[static_cast<std::size_t>(s)], &sets[s],
                                    &error)) {
      std::fprintf(stderr, "aptperf: %s\n", error.c_str());
      return 2;
    }
  }
  const TraceAnalysis* a = PickTrack(sets[0], strategy, "first");
  const TraceAnalysis* b = PickTrack(sets[1], strategy, "second");
  if (a == nullptr || b == nullptr) return 2;
  apt::obs::DiffAnalyses(*a, *b, threshold).WriteMarkdown(std::cout);
  return 0;
}

int CmdGate(const std::vector<std::string>& args) {
  std::string baseline_path;
  std::vector<std::string> current_paths;
  GateOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (TakeValueFlag(args, &i, "--baseline", &baseline_path)) continue;
    if (TakeValueFlag(args, &i, "--current", &value)) {
      current_paths.push_back(value);
      continue;
    }
    if (TakeValueFlag(args, &i, "--tolerance", &value)) {
      options.sim_tolerance = std::stod(value);
      continue;
    }
    if (TakeValueFlag(args, &i, "--wall-tolerance", &value)) {
      options.wall_tolerance = std::stod(value);
      continue;
    }
    if (args[i] == "--no-wall") {
      options.gate_wall = false;
      continue;
    }
    return Usage();
  }
  if (baseline_path.empty() || current_paths.empty()) return Usage();

  std::string error;
  JsonValue baseline;
  if (!apt::obs::LoadRecordsFile(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "aptperf: %s\n", error.c_str());
    return 2;
  }
  std::vector<JsonValue> current_docs(current_paths.size());
  std::vector<const JsonValue*> current_ptrs;
  for (std::size_t i = 0; i < current_paths.size(); ++i) {
    if (!apt::obs::LoadRecordsFile(current_paths[i], &current_docs[i], &error)) {
      std::fprintf(stderr, "aptperf: %s\n", error.c_str());
      return 2;
    }
    current_ptrs.push_back(&current_docs[i]);
  }
  const JsonValue current = apt::obs::MergeRecordsDocs(current_ptrs);
  const GateReport report = apt::obs::RunGate(baseline, current, options);
  report.WriteMarkdown(std::cout);
  return report.Pass() ? 0 : 1;
}

int CmdMerge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> in_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (TakeValueFlag(args, &i, "--out", &out_path)) continue;
    in_paths.push_back(args[i]);
  }
  if (out_path.empty() || in_paths.empty()) return Usage();
  std::string error;
  std::vector<JsonValue> docs(in_paths.size());
  std::vector<const JsonValue*> ptrs;
  for (std::size_t i = 0; i < in_paths.size(); ++i) {
    if (!apt::obs::LoadRecordsFile(in_paths[i], &docs[i], &error)) {
      std::fprintf(stderr, "aptperf: %s\n", error.c_str());
      return 2;
    }
    ptrs.push_back(&docs[i]);
  }
  const JsonValue merged = apt::obs::MergeRecordsDocs(ptrs);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "aptperf: cannot write %s\n", out_path.c_str());
    return 2;
  }
  apt::obs::WriteRecordsDoc(out, merged);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int CmdFlight(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  JsonValue doc;
  std::string error;
  if (!apt::obs::ParseJsonFile(args[0], &doc, &error)) {
    std::fprintf(stderr, "aptperf: %s\n", error.c_str());
    return 2;
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || version->kind != JsonValue::kNumber ||
      static_cast<std::int64_t>(version->num) > apt::obs::kObsSchemaVersion) {
    std::fprintf(stderr, "aptperf: %s: unsupported or missing schema_version\n",
                 args[0].c_str());
    return 2;
  }
  if (const std::string* reason = doc.StrOrNull("reason")) {
    std::printf("reason: %s\n", reason->c_str());
  }
  std::printf("recorded %lld total, %lld overwritten before dump\n",
              static_cast<long long>(doc.NumOr("total_recorded", 0.0)),
              static_cast<long long>(doc.NumOr("dropped", 0.0)));
  const JsonValue* events = doc.Find("events");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    std::fprintf(stderr, "aptperf: %s: no events array\n", args[0].c_str());
    return 2;
  }
  for (const JsonValue& e : events->arr) {
    if (e.kind != JsonValue::kObject) continue;
    std::ostringstream line;
    line << "#" << static_cast<std::int64_t>(e.NumOr("seq", -1.0));
    if (const JsonValue* sim = e.Find("sim_s")) line << "  sim=" << sim->num << "s";
    const std::string* kind = e.StrOrNull("kind");
    line << "  " << (kind != nullptr ? *kind : std::string("?"));
    if (const std::string* label = e.StrOrNull("label")) line << " " << *label;
    if (const JsonValue* eargs = e.Find("args");
        eargs != nullptr && eargs->kind == JsonValue::kObject) {
      for (const auto& [key, v] : eargs->obj) {
        line << "  " << key << "=";
        if (v.kind == JsonValue::kString) {
          line << v.str;
        } else if (v.kind == JsonValue::kNumber) {
          line << v.num;
        }
      }
    }
    std::printf("%s\n", line.str().c_str());
  }
  return 0;
}

/// Loads a telemetry timeline JSONL export: schema-checked header line,
/// then one window row per line, grouped per series in window order.
bool LoadTimeline(const std::string& path,
                  std::map<std::string, std::vector<apt::obs::WindowStats>>* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    std::string parse_error;
    if (!apt::obs::ParseJson(line, &v, &parse_error)) {
      *error = path + ":" + std::to_string(lineno) + ": " + parse_error;
      return false;
    }
    if (!saw_header) {
      const JsonValue* version = v.Find("schema_version");
      const JsonValue* meta = v.Find("meta");
      const std::string* kind =
          meta != nullptr ? meta->StrOrNull("kind") : nullptr;
      if (version == nullptr || version->kind != JsonValue::kNumber ||
          static_cast<std::int64_t>(version->num) > apt::obs::kObsSchemaVersion ||
          kind == nullptr || *kind != "telemetry") {
        *error = path + ": not a telemetry timeline (bad header line)";
        return false;
      }
      saw_header = true;
      continue;
    }
    const std::string* series = v.StrOrNull("series");
    if (series == nullptr) continue;
    apt::obs::WindowStats w;
    w.window = static_cast<std::int64_t>(v.NumOr("window", -1.0));
    w.t0_s = v.NumOr("t0_s", 0.0);
    w.t1_s = v.NumOr("t1_s", 0.0);
    w.count = static_cast<std::int64_t>(v.NumOr("count", 0.0));
    w.sum = v.NumOr("sum", 0.0);
    w.min = v.NumOr("min", 0.0);
    w.max = v.NumOr("max", 0.0);
    w.p50 = v.NumOr("p50", 0.0);
    w.p95 = v.NumOr("p95", 0.0);
    w.p99 = v.NumOr("p99", 0.0);
    (*out)[*series].push_back(w);
  }
  if (!saw_header) {
    *error = path + ": empty file (no header line)";
    return false;
  }
  return true;
}

int CmdTimeline(const std::vector<std::string>& args) {
  std::string path, series_filter;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (TakeValueFlag(args, &i, "--series", &series_filter)) continue;
    if (path.empty()) {
      path = args[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();
  std::map<std::string, std::vector<apt::obs::WindowStats>> timeline;
  std::string error;
  if (!LoadTimeline(path, &timeline, &error)) {
    std::fprintf(stderr, "aptperf: %s\n", error.c_str());
    return 2;
  }
  bool any = false;
  for (const auto& [series, windows] : timeline) {
    if (!series_filter.empty() && series != series_filter) continue;
    any = true;
    std::printf("%s  (%zu windows)\n", series.c_str(), windows.size());
    std::printf("  %10s %12s %12s %8s %12s %12s %12s %12s %12s\n", "window",
                "t0_s", "t1_s", "count", "mean", "p50", "p95", "p99", "max");
    for (const apt::obs::WindowStats& w : windows) {
      std::printf("  %10lld %12.6f %12.6f %8lld %12.6g %12.6g %12.6g %12.6g "
                  "%12.6g\n",
                  static_cast<long long>(w.window), w.t0_s, w.t1_s,
                  static_cast<long long>(w.count), w.Mean(), w.p50, w.p95,
                  w.p99, w.max);
    }
  }
  if (!any && !series_filter.empty()) {
    std::fprintf(stderr, "aptperf: %s has no series %s\n", path.c_str(),
                 series_filter.c_str());
    return 2;
  }
  return 0;
}

int CmdSlo(const std::vector<std::string>& args) {
  std::string path;
  std::vector<apt::obs::SloRule> rules;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (TakeValueFlag(args, &i, "--rule", &value)) {
      apt::obs::SloRule rule;
      std::string error;
      if (!apt::obs::ParseSloRule(value, &rule, &error)) {
        std::fprintf(stderr, "aptperf: bad --rule \"%s\": %s\n", value.c_str(),
                     error.c_str());
        return 2;
      }
      rules.push_back(std::move(rule));
      continue;
    }
    if (path.empty()) {
      path = args[i];
    } else {
      return Usage();
    }
  }
  if (path.empty() || rules.empty()) return Usage();
  std::map<std::string, std::vector<apt::obs::WindowStats>> timeline;
  std::string error;
  if (!LoadTimeline(path, &timeline, &error)) {
    std::fprintf(stderr, "aptperf: %s\n", error.c_str());
    return 2;
  }
  // Same firing semantics as the in-process watchdog (obs/slo.h): windows
  // under min_count are skipped, and a violation only fires after
  // sustain_windows consecutive violating windows.
  int violations = 0;
  for (const apt::obs::SloRule& rule : rules) {
    const auto it = timeline.find(rule.series);
    if (it == timeline.end()) {
      std::printf("%-40s  no windows for series %s — SKIP\n",
                  rule.name.c_str(), rule.series.c_str());
      continue;
    }
    int streak = 0, fired = 0;
    std::int64_t evaluated = 0;
    double worst = 0.0;
    std::int64_t worst_window = -1;
    for (const apt::obs::WindowStats& w : it->second) {
      if (w.count < rule.min_count) continue;
      ++evaluated;
      const double value = apt::obs::SloStatOf(w, rule.stat);
      const bool healthy = rule.cmp == apt::obs::SloCmp::kLt
                               ? value < rule.bound
                               : value > rule.bound;
      if (healthy) {
        streak = 0;
        continue;
      }
      ++streak;
      if (streak >= rule.sustain_windows) {
        ++fired;
        if (worst_window < 0 ||
            (rule.cmp == apt::obs::SloCmp::kLt ? value > worst
                                               : value < worst)) {
          worst = value;
          worst_window = w.window;
        }
      }
    }
    if (fired == 0) {
      std::printf("%-40s  OK over %lld windows\n", rule.name.c_str(),
                  static_cast<long long>(evaluated));
    } else {
      violations += fired;
      std::printf("%-40s  VIOLATED in %d of %lld windows (worst %s=%g %s %g "
                  "at window %lld)\n",
                  rule.name.c_str(), fired, static_cast<long long>(evaluated),
                  apt::obs::ToString(rule.stat), worst,
                  rule.cmp == apt::obs::SloCmp::kLt ? ">=" : "<=", rule.bound,
                  static_cast<long long>(worst_window));
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (cmd == "report") return CmdReport(args);
  if (cmd == "diff") return CmdDiff(args);
  if (cmd == "gate") return CmdGate(args);
  if (cmd == "merge") return CmdMerge(args);
  if (cmd == "flight") return CmdFlight(args);
  if (cmd == "timeline") return CmdTimeline(args);
  if (cmd == "slo") return CmdSlo(args);
  return Usage();
}
